(* The sampling layer (DESIGN.md §12): the policy's window arithmetic,
   the rate-1.0 identity oracle (byte-identical to the pre-sampling
   build at every jobs/shards/vkeys combination), the soundness
   contract (a sampled run's reports are a subset of full Kard's on
   the same seed — delayed or missed, never invented), and a fuzz
   sweep under a forced sampling rate with zero unexpected
   divergences. *)

module Sampling = Kard_core.Sampling
module Config = Kard_core.Config
module Race_record = Kard_core.Race_record
module Pkey = Kard_mpk.Pkey
module Race_suite = Kard_workloads.Race_suite
module Keypressure = Kard_workloads.Keypressure
module Runner = Kard_harness.Runner
module Json_report = Kard_harness.Json_report
module Experiments = Kard_harness.Experiments
module Defaults = Kard_harness.Defaults
module Campaign = Kard_fuzz.Campaign

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 The policy} *)

let test_create_validation () =
  let rejects rate epoch =
    try
      ignore (Sampling.create ~rate ~epoch_cycles:epoch ~seed:1);
      false
    with Invalid_argument _ -> true
  in
  check "rate 0 rejected" true (rejects 0.0 100);
  check "rate above 1 rejected" true (rejects 1.5 100);
  check "negative rate rejected" true (rejects (-0.5) 100);
  check "negative epoch rejected" true (rejects 0.5 (-1));
  check "rate 1 accepted and disabled" false
    (Sampling.enabled (Sampling.create ~rate:1.0 ~epoch_cycles:100 ~seed:1))

let test_identity_rate () =
  let t = Sampling.create ~rate:1.0 ~epoch_cycles:1_000 ~seed:99 in
  let all_true = ref true in
  for id = 0 to 999 do
    for epoch = 0 to 3 do
      if
        (not (Sampling.sampled_obj t ~epoch ~obj_id:id))
        || not (Sampling.sampled_section t ~epoch ~section:id)
      then all_true := false
    done
  done;
  check "rate 1.0 answers true everywhere" true !all_true

let population = 4_096

let sampled_set t ~epoch =
  let s = Hashtbl.create 512 in
  for id = 0 to population - 1 do
    if Sampling.sampled_obj t ~epoch ~obj_id:id then Hashtbl.replace s id ()
  done;
  s

let test_rate_fraction () =
  List.iter
    (fun rate ->
      let t = Sampling.create ~rate ~epoch_cycles:0 ~seed:7 in
      let n = Hashtbl.length (sampled_set t ~epoch:0) in
      let frac = float_of_int n /. float_of_int population in
      check
        (Printf.sprintf "fraction near rate %g (got %g)" rate frac)
        true
        (Float.abs (frac -. rate) < 0.05))
    [ 0.1; 0.25; 0.5; 0.75 ]

(* The sliding window: per-epoch membership churn stays far below an
   independent re-draw's 2*rate*(1-rate), and a revolution covers
   every id. *)
let test_window_churn_and_coverage () =
  let rate = 0.5 in
  let t = Sampling.create ~rate ~epoch_cycles:1 ~seed:13 in
  let churn_bound =
    (* 2 * min(rate, 1/128) of the population, with generous slack for
       hash placement variance. *)
    int_of_float (2.5 *. 2.0 /. 128.0 *. float_of_int population)
  in
  let prev = ref (sampled_set t ~epoch:0) in
  let max_churn = ref 0 in
  let covered = Hashtbl.create population in
  Hashtbl.iter (fun id () -> Hashtbl.replace covered id ()) !prev;
  for epoch = 1 to 160 do
    let cur = sampled_set t ~epoch in
    let churn = ref 0 in
    Hashtbl.iter (fun id () -> if not (Hashtbl.mem !prev id) then incr churn) cur;
    Hashtbl.iter (fun id () -> if not (Hashtbl.mem cur id) then incr churn) !prev;
    max_churn := max !max_churn !churn;
    Hashtbl.iter (fun id () -> Hashtbl.replace covered id ()) cur;
    prev := cur
  done;
  check
    (Printf.sprintf "churn per epoch bounded (max %d <= %d)" !max_churn churn_bound)
    true (!max_churn <= churn_bound);
  check_int "one revolution covers every id" population (Hashtbl.length covered)

let test_epoch_of () =
  let t = Sampling.create ~rate:0.5 ~epoch_cycles:1_000 ~seed:1 in
  check_int "epoch 0" 0 (Sampling.epoch_of t ~now:999);
  check_int "epoch 1" 1 (Sampling.epoch_of t ~now:1_000);
  check_int "epoch 41" 41 (Sampling.epoch_of t ~now:41_999);
  let frozen = Sampling.create ~rate:0.5 ~epoch_cycles:0 ~seed:1 in
  check_int "no rotation at epoch_cycles 0" 0 (Sampling.epoch_of frozen ~now:1_000_000)

(* {1 Whole runs: the rate-1.0 identity oracle} *)

let smoke_scale = 0.05

let full_config ~vkeys =
  { Config.default with Config.vkeys = (if vkeys then 64 else 0) }

let run_keys ?(sampling = 1.0) ~vkeys ~shards () =
  let config = { (full_config ~vkeys) with Config.sampling } in
  Runner.run ~shards ~scale:smoke_scale ~detector:(Runner.Kard config)
    Keypressure.keys_10k

let test_identity_oracle () =
  List.iter
    (fun (vkeys, shards) ->
      let label = Printf.sprintf "vkeys=%b shards=%d" vkeys shards in
      let base = run_keys ~vkeys ~shards () in
      let sampled = run_keys ~sampling:1.0 ~vkeys ~shards () in
      check (label ^ ": result byte-identical at rate 1.0") true (base = sampled);
      check (label ^ ": JSON byte-identical at rate 1.0") true
        (Json_report.of_result base = Json_report.of_result sampled))
    [ (false, 1); (false, 2); (true, 1); (true, 2) ]

(* The sweep itself is deterministic across worker counts: the bench
   merge is a pure function of per-job results that are themselves
   byte-identical at any parallelism. *)
let smoke_sweep ~jobs =
  Experiments.sampling ~jobs
    ~scenarios:[ "ilu-lock-lock"; "exclusive-write" ]
    ~rates:[ 0.5; 1.0 ] ~seeds:[ 42; 43 ] ~serve_rates:[ 0.5 ] ~scale:0.02 ()

let test_sweep_jobs_identity () =
  let b1 = smoke_sweep ~jobs:1 and b4 = smoke_sweep ~jobs:4 in
  check "sampling sweep identical at 1 vs 4 jobs" true (b1 = b4);
  check "sampling JSON identical at 1 vs 4 jobs" true
    (Json_report.of_sampling_bench ~build:"test" ~threads:4 ~scale:0.02 ~seed:42 b1
    = Json_report.of_sampling_bench ~build:"test" ~threads:4 ~scale:0.02 ~seed:42 b4);
  check "every sweep row satisfies the subset property" true
    (List.for_all (fun r -> r.Experiments.sp_subset_ok) b1.Experiments.sp_rows)

(* {1 The soundness contract: sampled reports are a subset} *)

let race_objects (r : Runner.result) =
  List.sort_uniq compare
    (List.map (fun (x : Race_record.t) -> x.Race_record.obj_id) r.Runner.kard_races)

let subset a b = List.for_all (fun x -> List.mem x b) a

let test_subset_on_race_suite () =
  List.iter
    (fun (s : Race_suite.t) ->
      let run rate seed =
        let config =
          { s.Race_suite.config with Config.sampling = rate; sampling_epoch = 50_000 }
        in
        Runner.run_scenario ~seed ~override_config:config ~detector:(Runner.Kard config) s
      in
      List.iter
        (fun seed ->
          let full = race_objects (run 1.0 seed) in
          List.iter
            (fun rate ->
              let sampled = race_objects (run rate seed) in
              check
                (Printf.sprintf "%s seed %d rate %g: sampled races form a subset"
                   s.Race_suite.name seed rate)
                true (subset sampled full))
            [ 0.25; 0.5 ])
        [ 42; 43; 44 ])
    Race_suite.all

(* Detection latency is only defined when something was detected. *)
let test_first_race_cs () =
  let s = Race_suite.find "ilu-lock-lock" in
  let r =
    Runner.run_scenario ~seed:42 ~detector:(Runner.Kard s.Race_suite.config) s
  in
  match r.Runner.kard_stats with
  | None -> Alcotest.fail "kard run must report stats"
  | Some st ->
    if r.Runner.kard_races <> [] then
      check "first_race_cs set when a race is recorded" true
        (st.Kard_core.Detector.first_race_cs >= 0)
    else
      check_int "first_race_cs is -1 without a record" (-1)
        st.Kard_core.Detector.first_race_cs

(* {1 Fuzz: a forced-sampling sweep with zero unexpected divergences} *)

let test_fuzz_sweep () =
  let r = Campaign.run ~jobs:4 ~sampling:0.5 ~count:40 ~seed:20_260_809 () in
  check_int "forty programs ran" 40 r.Campaign.programs;
  check "no unexpected divergences under sampling" true
    (r.Campaign.unexpected_indices = [])

let () =
  Alcotest.run "kard_sampling"
    [ ( "policy",
        [ Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "rate 1.0 is the identity" `Quick test_identity_rate;
          Alcotest.test_case "sampled fraction tracks the rate" `Quick test_rate_fraction;
          Alcotest.test_case "window churn and coverage" `Quick test_window_churn_and_coverage;
          Alcotest.test_case "epoch arithmetic" `Quick test_epoch_of ] );
      ( "identity",
        [ Alcotest.test_case "rate 1.0 at every shards/vkeys combo" `Quick
            test_identity_oracle;
          Alcotest.test_case "sweep at 1 vs 4 jobs" `Quick test_sweep_jobs_identity ] );
      ( "soundness",
        [ Alcotest.test_case "subset on the race suite" `Quick test_subset_on_race_suite;
          Alcotest.test_case "detection latency stat" `Quick test_first_race_cs ] );
      ( "fuzz",
        [ Alcotest.test_case "40-program sweep at rate 0.5" `Quick test_fuzz_sweep ] ) ]
