(* The differential fuzzing subsystem: generator validity, oracle
   units, campaign determinism (jobs- and resume-invariance), and the
   shrinker on an injected detector bug. *)

module Prog = Kard_fuzz.Prog
module Trace_log = Kard_fuzz.Trace_log
module Oracles = Kard_fuzz.Oracles
module Harness = Kard_fuzz.Harness
module Shrink = Kard_fuzz.Shrink
module Campaign = Kard_fuzz.Campaign
module D = Kard_core.Divergence

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Generator} *)

let test_generator_valid () =
  for i = 0 to 199 do
    let rand = Random.State.make [| 977; i |] in
    let prog = Prog.generate ~rand () in
    match Prog.check prog with
    | Ok () -> ()
    | Error e -> Alcotest.failf "generated program %d invalid: %s" i e
  done

let test_generator_covers_key_pressure () =
  (* The bimodal slot count must produce both small programs and
     programs with more live objects than the 13 data keys. *)
  let small = ref 0 and big = ref 0 in
  for i = 0 to 99 do
    let rand = Random.State.make [| 978; i |] in
    let prog = Prog.generate ~rand () in
    if prog.Prog.slots > 13 then incr big else incr small
  done;
  check "some small programs" true (!small > 10);
  check "some key-pressure programs" true (!big > 10)

let test_taxonomy_names_roundtrip () =
  List.iter
    (fun c ->
      match D.of_name (D.name c) with
      | Some c' -> check (D.name c) true (D.equal c c')
      | None -> Alcotest.failf "class %s does not round-trip" (D.name c))
    D.all;
  check "only unexplainable classes are unexpected" true
    (List.for_all
       (fun c ->
         D.expected c
         = not
             (D.equal c D.Unexpected || D.equal c D.Shard_divergence
             || D.equal c D.Replay_divergence))
       D.all)

(* {1 Oracle units} *)

let ev_lock tid lock site = Trace_log.Lock { tid; lock; site }
let ev_unlock tid lock = Trace_log.Unlock { tid; lock }
let ev_write tid obj = Trace_log.Write { tid; obj }

let test_hb_unordered_writes_race () =
  let events = [ ev_write 1 5; ev_write 2 5 ] in
  match Oracles.hb ~threads:3 events with
  | [ r ] ->
    check_int "object" 5 r.Oracles.obj;
    check "unlocked pair" true r.Oracles.unlocked_pair
  | l -> Alcotest.failf "expected one racy object, got %d" (List.length l)

let test_hb_lock_edge_orders () =
  (* Release-to-acquire on the same lock orders the two writes. *)
  let events =
    [ ev_lock 1 9 0; ev_write 1 5; ev_unlock 1 9; ev_lock 2 9 0; ev_write 2 5; ev_unlock 2 9 ]
  in
  check_int "no race through a lock edge" 0 (List.length (Oracles.hb ~threads:3 events))

let test_hb_different_locks_race () =
  let events =
    [ ev_lock 1 8 0; ev_write 1 5; ev_unlock 1 8; ev_lock 2 9 0; ev_write 2 5; ev_unlock 2 9 ]
  in
  match Oracles.hb ~threads:3 events with
  | [ r ] -> check "both sides locked" false r.Oracles.unlocked_pair
  | l -> Alcotest.failf "expected one racy object, got %d" (List.length l)

let test_alg1_overlapping_sections () =
  let events = [ ev_lock 1 1 11; ev_write 1 5; ev_lock 2 2 12; ev_write 2 5 ] in
  check_int "alg1 flags the object" 1
    (List.length (Oracles.alg1 ~section_identity:Kard_core.Config.By_call_site events))

let test_lockset_warns_on_inconsistent_locking () =
  (* Three critical sections: the third access empties the candidate
     set while Shared-modified. *)
  let events =
    [ ev_lock 1 1 0; ev_write 1 5; ev_unlock 1 1;
      ev_lock 2 2 0; ev_write 2 5; ev_unlock 2 2;
      ev_lock 1 1 0; ev_write 1 5; ev_unlock 1 1 ]
  in
  match Oracles.lockset events with
  | [ o ] -> check "warned" true o.Oracles.warned
  | l -> Alcotest.failf "expected one object, got %d" (List.length l)

let test_lockset_init_exemption () =
  (* The classic Eraser initialization miss: t1 writes unlocked while
     Exclusive, t2 then writes under a lock.  The candidate set stays
     nonempty ({lock}), no warning — but the strict shadow replay
     (refining from the first access) warns. *)
  let events = [ ev_write 1 5; ev_lock 2 3 0; ev_write 2 5; ev_unlock 2 3 ] in
  match Oracles.lockset events with
  | [ o ] ->
    check "no eraser warning" false o.Oracles.warned;
    check "strict replay warns" true o.Oracles.strict_warned;
    check "candidate nonempty" true o.Oracles.candidate_nonempty;
    check "shared-modified" true (o.Oracles.state = Oracles.Shared_modified)
  | l -> Alcotest.failf "expected one object, got %d" (List.length l)

(* Minimized from the 10k campaign (program 5175, by-lock config): t2
   writes the object under lock 2, exits, t1 reads it under lock 0 —
   then t2 re-enters.  The somap says the section needs the write key,
   but t1 holds read permission, so the runtime's proactive
   acquisition downgrades to a read hold (detector.ml), and t1's write
   faults against it: a true ILU report.  Algorithm 1's proactive
   acquisition skips the contested key outright and stays silent. *)
let test_proactive_downgrade_classifies () =
  let prog : Prog.t =
    let open Prog in
    { workers = 2;
      slots = 3;
      locks = 3;
      slot_size = 64;
      phases =
        [ { refresh = [];
            work =
              [| [ Locked
                     { lock = 0; site = 0;
                       body = [ Read { slot = 2; off = 0 }; Write { slot = 2; off = 0 } ] } ];
                 [ Locked { lock = 2; site = 0; body = [ Write { slot = 2; off = 0 } ] };
                   Locked { lock = 2; site = 0; body = [] } ]
              |] }
        ] }
  in
  let config =
    { Kard_core.Config.default with Kard_core.Config.section_identity = Kard_core.Config.By_lock }
  in
  let o = Harness.run ~config ~seed:294391 prog in
  check "not unexpected" false o.Harness.unexpected;
  check "proactive-hold-blame observed" true
    (List.exists
       (fun c -> Kard_core.Divergence.equal c Kard_core.Divergence.Proactive_hold_blame)
       o.Harness.classes)

(* The other proactive-hold-blame sub-cause, also minimized from the
   10k campaign (program 5175 round 2, by-lock config): t1's nested
   section upgrades slot 2's key and the inner exit releases the
   runtime's whole hold, so t2's re-entry proactively reclaims the
   write key — which Algorithm 1 still shows held by t1 (its
   saved-set exit keeps the outer read hold), so the reclaim is
   contested and skipped there.  t1's later out-of-section read then
   blames t2's proactive hold: a runtime-only report. *)
let test_proactive_nested_release_classifies () =
  let prog : Prog.t =
    let open Prog in
    { workers = 2;
      slots = 3;
      locks = 2;
      slot_size = 64;
      phases =
        [ { refresh = [];
            work =
              [| [ Write { slot = 0; off = 0 };
                   Read { slot = 0; off = 0 };
                   Locked
                     { lock = 0; site = 0;
                       body =
                         [ Yield;
                           Read { slot = 2; off = 0 };
                           Locked
                             { lock = 1; site = 0;
                               body =
                                 [ Read { slot = 0; off = 0 }; Write { slot = 2; off = 0 } ] }
                         ] };
                   Read { slot = 2; off = 0 } ];
                 [ Read { slot = 0; off = 0 };
                   Locked { lock = 1; site = 0; body = [ Write { slot = 2; off = 0 } ] };
                   Read { slot = 0; off = 0 };
                   Read { slot = 0; off = 0 };
                   Yield;
                   Locked { lock = 1; site = 0; body = [ Read { slot = 0; off = 0 } ] } ]
              |] }
        ] }
  in
  let config =
    { Kard_core.Config.default with Kard_core.Config.section_identity = Kard_core.Config.By_lock }
  in
  let o = Harness.run ~config ~seed:294391 prog in
  check "not unexpected" false o.Harness.unexpected;
  check "proactive-hold-blame observed" true
    (List.exists
       (fun c -> Kard_core.Divergence.equal c Kard_core.Divergence.Proactive_hold_blame)
       o.Harness.classes)

(* {1 Differential harness: a clean sweep stays clean} *)

let test_harness_no_unexpected () =
  for i = 0 to 39 do
    let rand = Random.State.make [| 42; i |] in
    let prog = Prog.generate ~rand () in
    let mseed = Random.State.int rand 1_000_000 in
    let o = Harness.run ~seed:mseed prog in
    if o.Harness.unexpected then
      Alcotest.failf "program %d diverged unexpectedly:@ %a" i Harness.pp_outcome o
  done

(* {1 Campaign determinism} *)

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let dir_contents dir =
  List.sort compare (Array.to_list (Sys.readdir dir))
  |> List.map (fun f -> (f, read_file (Filename.concat dir f)))

let tmp_dir name =
  let d = Filename.concat (Filename.get_temp_dir_name ()) ("kard-fuzz-test-" ^ name) in
  rm_rf d;
  d

let test_campaign_jobs_invariant () =
  let c1 = tmp_dir "jobs1" and c4 = tmp_dir "jobs4" in
  let r1 = Campaign.run ~jobs:1 ~corpus:c1 ~count:24 ~seed:7 () in
  let r4 = Campaign.run ~jobs:4 ~corpus:c4 ~count:24 ~seed:7 () in
  check_int "same divergent count" r1.Campaign.divergent r4.Campaign.divergent;
  check "same class counts" true (r1.Campaign.class_counts = r4.Campaign.class_counts);
  check "no unexpected" true (r1.Campaign.unexpected_indices = []);
  let f1 = dir_contents c1 and f4 = dir_contents c4 in
  check "same corpus file names" true (List.map fst f1 = List.map fst f4);
  List.iter2
    (fun (name, b1) (_, b4) ->
      if not (String.equal b1 b4) then Alcotest.failf "corpus file %s differs across --jobs" name)
    f1 f4;
  rm_rf c1;
  rm_rf c4

let test_campaign_resume_identity () =
  let cfull = tmp_dir "full" and cresume = tmp_dir "resume" in
  let rfull = Campaign.run ~jobs:2 ~corpus:cfull ~count:24 ~seed:7 () in
  let (_ : Campaign.result) = Campaign.run ~jobs:2 ~corpus:cresume ~count:12 ~seed:7 () in
  let rresume = Campaign.run ~jobs:2 ~corpus:cresume ~count:24 ~seed:7 () in
  check_int "resumed run only did the remainder" 12 rresume.Campaign.programs;
  check_int "same totals" rfull.Campaign.total rresume.Campaign.total;
  check "same class counts" true (rfull.Campaign.class_counts = rresume.Campaign.class_counts);
  let ffull = dir_contents cfull and fresume = dir_contents cresume in
  check "same corpus file names" true (List.map fst ffull = List.map fst fresume);
  List.iter2
    (fun (name, b1) (_, b2) ->
      if not (String.equal b1 b2) then Alcotest.failf "corpus file %s differs after resume" name)
    ffull fresume;
  rm_rf cfull;
  rm_rf cresume

let test_campaign_seed_mismatch_fails () =
  let c = tmp_dir "mismatch" in
  let (_ : Campaign.result) = Campaign.run ~jobs:1 ~corpus:c ~count:2 ~seed:7 () in
  (match Campaign.run ~jobs:1 ~corpus:c ~count:4 ~seed:8 () with
  | (_ : Campaign.result) -> Alcotest.fail "seed mismatch accepted"
  | exception Failure _ -> ());
  rm_rf c

(* {1 The replay oracle} *)

let test_replay_gate_no_divergence () =
  (* The record/replay gate on a 20-program sweep: every program must
     round-trip its nondeterminism log and replay to the identical
     report and race list — Replay_divergence is never expected. *)
  for i = 0 to 19 do
    let rand = Random.State.make [| 1042; i |] in
    let prog = Prog.generate ~rand () in
    let mseed = Random.State.int rand 1_000_000 in
    let o = Harness.run ~replay:true ~seed:mseed prog in
    if List.mem D.Replay_divergence o.Harness.classes then
      Alcotest.failf "program %d diverged under the replay gate:@ %a" i Harness.pp_outcome o;
    if o.Harness.unexpected then
      Alcotest.failf "program %d diverged unexpectedly:@ %a" i Harness.pp_outcome o
  done

let test_fuzz_target_roundtrip () =
  check "target parses back" true (Campaign.of_target (Campaign.target ~seed:42 13) = Some (42, 13));
  check "junk targets rejected" true
    (Campaign.of_target "fuzz:x:y" = None && Campaign.of_target "spec:memcached" = None);
  let a = Campaign.reconstruct ~seed:42 13 and b = Campaign.reconstruct ~seed:42 13 in
  check "reconstruction is pure" true (a = b);
  check "entry 13 runs the replay oracle" true a.Campaign.rp_replay

let test_campaign_rotation_covers_replay () =
  (* One full trip through the config rotation, which includes the
     two replay-oracle entries, must report nothing unexpected. *)
  check_int "rotation length" 15 (List.length Campaign.configs);
  check "rotation includes replay-oracle entries" true
    (List.exists (fun (_, _, _, _, replay) -> replay) Campaign.configs);
  let r = Campaign.run ~jobs:2 ~count:(List.length Campaign.configs) ~seed:4242 () in
  check "no unexpected across one full rotation" true (r.Campaign.unexpected_indices = [])

(* {1 Shrinker} *)

(* The injected detector bug: the runtime "loses" both its race
   records and its provenance log, so every Algorithm 1 race becomes
   an unexpected under-report. *)
let injected_oracle ~mseed p =
  let kard_filter (_ : Kard_core.Race_record.t) = false in
  let provenance_filter (pr : Kard_core.Detector.provenance) =
    { pr with Kard_core.Detector.key_shared = false; recycled = false; pruned = false;
      grouped = false; demoted = false; ro_identified = false }
  in
  (Harness.run ~kard_filter ~provenance_filter ~seed:mseed p).Harness.unexpected

let test_shrinker_minimizes_injected_bug () =
  (* Campaign seed 42, program 4: a 48-op, 4-worker program whose
     injected-bug divergence survives minimization down to a two-line
     repro. *)
  let rand = Random.State.make [| 42; 4 |] in
  let prog = Prog.generate ~rand () in
  let mseed = Random.State.int rand 1_000_000 in
  let oracle = injected_oracle ~mseed in
  check "seed program triggers the injected bug" true (oracle prog);
  let small, evals = Shrink.minimize ~oracle prog in
  check "minimum still triggers" true (oracle small);
  check "minimum is valid" true (Prog.check small = Ok ());
  check "minimized to <= 2 workers" true (small.Prog.workers <= 2);
  check "minimized to <= 6 ops" true (Prog.op_count small <= 6);
  check "minimized to one phase" true (List.length small.Prog.phases = 1);
  check "bounded oracle budget" true (evals <= 4000);
  check "strictly smaller" true (Shrink.size small < Shrink.size prog)

let test_printed_repro_retriggers () =
  (* The Prog.to_ocaml output of the minimized program above, pasted
     back verbatim: the printed repro must compile (it is this very
     code) and re-trigger the same divergence. *)
  let prog : Kard_fuzz.Prog.t =
    let open Kard_fuzz.Prog in
    { workers = 2;
      slots = 8;
      locks = 1;
      slot_size = 64;
      phases =
      [{ refresh = [];
         work =
         [|[Locked { lock = 0; site = 0; body = [Read { slot = 7; off = 0 }] }];
           [Rmw { slot = 7; off = 0 }]|] }] }
  in
  check "repro is valid" true (Prog.check prog = Ok ());
  check "repro re-triggers the injected divergence" true (injected_oracle ~mseed:958318 prog);
  (* Under the real detector the same program is clean: the
     divergence was the injected bug, not a latent one. *)
  let o = Harness.run ~seed:958318 prog in
  check "clean under the real detector" false o.Harness.unexpected

let () =
  Alcotest.run "kard_fuzz"
    [ ( "generator",
        [ Alcotest.test_case "generated programs valid" `Quick test_generator_valid;
          Alcotest.test_case "bimodal key pressure" `Quick test_generator_covers_key_pressure;
          Alcotest.test_case "taxonomy names round-trip" `Quick test_taxonomy_names_roundtrip ] );
      ( "oracles",
        [ Alcotest.test_case "hb: unordered writes race" `Quick test_hb_unordered_writes_race;
          Alcotest.test_case "hb: lock edge orders" `Quick test_hb_lock_edge_orders;
          Alcotest.test_case "hb: different locks race" `Quick test_hb_different_locks_race;
          Alcotest.test_case "alg1: overlapping sections" `Quick test_alg1_overlapping_sections;
          Alcotest.test_case "lockset: inconsistent locking warns" `Quick
            test_lockset_warns_on_inconsistent_locking;
          Alcotest.test_case "proactive downgrade classifies" `Quick
            test_proactive_downgrade_classifies;
          Alcotest.test_case "proactive nested-release classifies" `Quick
            test_proactive_nested_release_classifies;
          Alcotest.test_case "lockset: initialization exemption" `Quick
            test_lockset_init_exemption ] );
      ( "harness",
        [ Alcotest.test_case "40-program sweep has no unexpected" `Quick
            test_harness_no_unexpected ] );
      ( "campaign",
        [ Alcotest.test_case "jobs-invariant corpus and report" `Quick
            test_campaign_jobs_invariant;
          Alcotest.test_case "resume-identical corpus" `Quick test_campaign_resume_identity;
          Alcotest.test_case "seed mismatch rejected" `Quick test_campaign_seed_mismatch_fails ] );
      ( "replay-oracle",
        [ Alcotest.test_case "20-program sweep under the gate" `Quick
            test_replay_gate_no_divergence;
          Alcotest.test_case "fuzz target round-trips" `Quick test_fuzz_target_roundtrip;
          Alcotest.test_case "rotation covers replay configs" `Quick
            test_campaign_rotation_covers_replay ] );
      ( "shrinker",
        [ Alcotest.test_case "injected bug minimizes small" `Quick
            test_shrinker_minimizes_injected_bug;
          Alcotest.test_case "printed repro re-triggers" `Quick test_printed_repro_retriggers ] ) ]
