(* Tests for the job/plan/pool layer: submission-order merging, the
   deterministic error policy, the serial degenerate path, and the
   parallel-vs-serial oracle — bit-identical tables, summaries and
   JSON reports at any worker count. *)

module Defaults = Kard_harness.Defaults
module Job = Kard_harness.Job
module Pool = Kard_harness.Pool
module Runner = Kard_harness.Runner
module Experiments = Kard_harness.Experiments
module Explorer = Kard_harness.Explorer
module Json_report = Kard_harness.Json_report
module Registry = Kard_workloads.Registry
module Race_suite = Kard_workloads.Race_suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* Fast settings: the oracle cares about equality, not fidelity. *)
let scale = 0.002

(* {1 Pool mechanics} *)

let test_map_order () =
  let items = List.init 37 (fun i -> i) in
  List.iter
    (fun jobs ->
      check_ints
        (Printf.sprintf "submission order at jobs=%d" jobs)
        (List.map (fun i -> i * i) items)
        (Pool.map ~jobs (fun i -> i * i) items))
    [ 1; 2; 4; 8 ]

let test_map_empty_and_singleton () =
  check_ints "empty" [] (Pool.map ~jobs:4 (fun i -> i) []);
  check_ints "singleton" [ 7 ] (Pool.map ~jobs:4 (fun i -> i) [ 7 ])

let test_resolve_jobs () =
  check_int "explicit" 3 (Pool.resolve_jobs (Some 3));
  check_int "clamped to 1" 1 (Pool.resolve_jobs (Some 0));
  check "default >= 1" true (Pool.resolve_jobs None >= 1)

let test_chunks () =
  Alcotest.(check (list (list int)))
    "uneven tail"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Pool.chunks 2 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int))) "empty" [] (Pool.chunks 3 []);
  check "k=0 rejected" true
    (try
       ignore (Pool.chunks 0 [ 1 ]);
       false
     with Invalid_argument _ -> true)

(* [~jobs:1] (and a singleton input at any [jobs]) is the inline fast
   path: every item runs on the caller's domain, no [Domain.spawn].
   Cheap sweeps and tests rely on this staying truly serial. *)
let test_jobs1_runs_inline () =
  let caller = Domain.self () in
  let seen = ref [] in
  let f i =
    seen := Domain.self () :: !seen;
    i
  in
  check_ints "jobs=1 maps" [ 0; 1; 2; 3 ] (Pool.map ~jobs:1 f [ 0; 1; 2; 3 ]);
  check "all on caller's domain" true (List.for_all (fun d -> d = caller) !seen);
  seen := [];
  check_ints "singleton at jobs=8" [ 5 ] (Pool.map ~jobs:8 f [ 5 ]);
  check "singleton on caller's domain" true (!seen = [ caller ])

(* Inline error semantics: the serial path stops at the first failing
   item — items after it are never evaluated — and the raised
   [Job_failed] carries that item's index and label. *)
let test_jobs1_error_semantics () =
  let executed = ref [] in
  let f i =
    executed := i :: !executed;
    if i = 3 then failwith "boom";
    i
  in
  (match Pool.map ~jobs:1 ~label:(fun i _ -> Printf.sprintf "item-%d" i) f (List.init 8 Fun.id) with
  | (_ : int list) -> Alcotest.fail "expected Job_failed"
  | exception Pool.Job_failed { index; label; message } ->
    check_int "failing index" 3 index;
    check "custom label" true (label = "item-3");
    check "message carries the exception" true
      (String.length message > 0 && String.sub message 0 (String.length "Failure") = "Failure"));
  check_ints "items after the failure never ran" [ 0; 1; 2; 3 ] (List.rev !executed)

(* A crash surfaces as [Job_failed] carrying the *smallest* failing
   submission index, at every worker count — the error a user sees
   must not depend on scheduling. *)
let test_crash_smallest_index () =
  let f i = if i mod 5 = 3 then failwith (Printf.sprintf "boom %d" i) else i in
  List.iter
    (fun jobs ->
      match Pool.map ~jobs f (List.init 20 (fun i -> i)) with
      | (_ : int list) -> Alcotest.fail "expected Job_failed"
      | exception Pool.Job_failed { index; label; message } ->
        check_int (Printf.sprintf "smallest failing index at jobs=%d" jobs) 3 index;
        check "label is the default index label" true (label = "#3");
        check "message carries the exception" true
          (String.length message >= String.length "boom 3"
          && String.sub message 0 (String.length "Failure") = "Failure"))
    [ 1; 2; 8 ]

(* {1 Cross-run isolation (the shared-state audit's regression test)} *)

(* Two identical jobs racing on the pool must produce identical
   reports: any cross-run shared mutable state would show up here as a
   divergence (or a crash). *)
let test_concurrent_identical_jobs () =
  let job = Job.spec ~scale ~seed:7 (Runner.Kard (Defaults.kard_config ())) (Registry.find "aget") in
  match Pool.run_jobs ~jobs:2 [ job; job ] with
  | [ a; b ] ->
    check "identical reports" true (a = b);
    check_int "same cycles" a.Runner.report.Kard_sched.Machine.cycles
      b.Runner.report.Kard_sched.Machine.cycles
  | _ -> Alcotest.fail "expected two results"

(* {1 Parallel-vs-serial oracles} *)

(* Untraced [Runner.result] values are closure-free, so [=] compares
   every counter, race record and baseline warning. *)
let test_run_jobs_oracle () =
  let spec = Registry.find "aget" in
  let jobs =
    List.concat_map
      (fun seed ->
        [ Job.spec ~scale ~seed Runner.Baseline spec;
          Job.spec ~scale ~seed (Runner.Kard (Defaults.kard_config ())) spec ])
      [ 1; 2; 3 ]
  in
  let serial = Pool.run_jobs ~jobs:1 jobs in
  let par = Pool.run_jobs ~jobs:4 jobs in
  check "results identical at jobs 1 vs 4" true (serial = par)

let test_table3_oracle () =
  let specs = [ Registry.find "aget"; Registry.find "streamcluster" ] in
  let serial = Experiments.table3 ~jobs:1 ~scale ~specs () in
  let par = Experiments.table3 ~jobs:4 ~scale ~specs () in
  check_int "same row count" (List.length serial) (List.length par);
  (* [t3_row.spec] holds build closures, so compare the result fields
     (all closure-free) rather than whole rows. *)
  List.iter2
    (fun (s : Experiments.t3_row) (p : Experiments.t3_row) ->
      check "spec name" true (s.Experiments.spec.Kard_workloads.Spec.name
                             = p.Experiments.spec.Kard_workloads.Spec.name);
      check "base" true (s.Experiments.base = p.Experiments.base);
      check "alloc" true (s.Experiments.alloc = p.Experiments.alloc);
      check "kard" true (s.Experiments.kard = p.Experiments.kard);
      check "tsan" true (s.Experiments.tsan = p.Experiments.tsan))
    serial par

let test_explorer_oracle () =
  let scenario = Race_suite.find "ilu-lock-lock" in
  let seeds = [ 1; 2; 3; 4; 5; 6 ] in
  let serial = Explorer.explore_scenario ~jobs:1 ~seeds scenario in
  let par = Explorer.explore_scenario ~jobs:4 ~seeds scenario in
  check "summaries identical" true (serial = par);
  check_ints "outcomes in seed order" seeds
    (List.map (fun o -> o.Explorer.seed) par.Explorer.outcomes)

(* The strongest form of the contract: the rendered JSON reports are
   byte-for-byte identical, not just structurally equal. *)
let test_json_byte_identical () =
  let spec = Registry.find "aget" in
  let jobs =
    List.map
      (fun seed -> Job.spec ~scale ~seed (Runner.Kard (Defaults.kard_config ())) spec)
      [ 1; 2; 3; 4 ]
  in
  let render results =
    String.concat "\n" (List.map (fun r -> Json_report.pretty (Json_report.of_result r)) results)
  in
  Alcotest.(check string)
    "JSON byte-for-byte at jobs 1 vs 4"
    (render (Pool.run_jobs ~jobs:1 jobs))
    (render (Pool.run_jobs ~jobs:4 jobs))

(* Traced jobs: the sink is created inside the executing worker, and
   the exported Chrome trace must not depend on the worker count. *)
let test_trace_oracle () =
  let spec = Registry.find "aget" in
  let jobs =
    List.map
      (fun seed ->
        Job.spec ~scale ~seed
          ~trace:(Job.trace_request ~capacity:4096 ())
          (Runner.Kard (Defaults.kard_config ())) spec)
      [ 1; 2 ]
  in
  let export results =
    List.map
      (fun r -> Kard_obs.Chrome_trace.to_json ~t:(Option.get r.Runner.trace))
      results
  in
  Alcotest.(check (list string))
    "exported traces identical at jobs 1 vs 2"
    (export (Pool.run_jobs ~jobs:1 jobs))
    (export (Pool.run_jobs ~jobs:2 jobs))

(* {1 Job construction & defaults} *)

let test_job_defaults () =
  let job = Job.spec (Runner.Kard (Defaults.kard_config ())) (Registry.find "aget") in
  let r = Job.run job in
  check "default scale" true (r.Runner.scale = Defaults.scale);
  check_int "default seed" Defaults.seed r.Runner.seed;
  check "no trace unless requested" true (r.Runner.trace = None)

let test_job_describe () =
  let job = Job.spec ~seed:9 Runner.Tsan (Registry.find "aget") in
  Alcotest.(check string) "describe" "aget/tsan/seed=9" (Job.describe job)

let test_defaults_jobs_env () =
  check "defaults" true (Defaults.scale = 0.01 && Defaults.seed = 42);
  check_int "explorer seeds 1..20" 20 (List.length Defaults.explorer_seeds);
  check_int "first explorer seed" 1 (List.hd Defaults.explorer_seeds)

let () =
  Alcotest.run "pool"
    [ ( "pool",
        [ Alcotest.test_case "map preserves submission order" `Quick test_map_order;
          Alcotest.test_case "map empty/singleton" `Quick test_map_empty_and_singleton;
          Alcotest.test_case "resolve_jobs" `Quick test_resolve_jobs;
          Alcotest.test_case "chunks" `Quick test_chunks;
          Alcotest.test_case "jobs=1 runs inline" `Quick test_jobs1_runs_inline;
          Alcotest.test_case "jobs=1 error semantics" `Quick test_jobs1_error_semantics;
          Alcotest.test_case "crash reports smallest index" `Quick test_crash_smallest_index ] );
      ( "isolation",
        [ Alcotest.test_case "concurrent identical jobs" `Slow test_concurrent_identical_jobs ] );
      ( "oracle",
        [ Alcotest.test_case "run_jobs jobs 1 vs 4" `Slow test_run_jobs_oracle;
          Alcotest.test_case "table3 jobs 1 vs 4" `Slow test_table3_oracle;
          Alcotest.test_case "explorer jobs 1 vs 4" `Slow test_explorer_oracle;
          Alcotest.test_case "json byte-for-byte" `Slow test_json_byte_identical;
          Alcotest.test_case "traces identical" `Slow test_trace_oracle ] );
      ( "job",
        [ Alcotest.test_case "defaults" `Slow test_job_defaults;
          Alcotest.test_case "describe" `Quick test_job_describe;
          Alcotest.test_case "defaults module" `Quick test_defaults_jobs_env ] ) ]
