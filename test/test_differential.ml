(* Differential testing: the operational MPK-driven runtime must agree
   with the pure Algorithm 1 on which objects are racy.

   Random multi-threaded programs are executed on the simulated
   machine under the Kard detector while a tracing wrapper records the
   interleaved Enter/Exit/Read/Write event sequence actually executed;
   the same sequence is then replayed through the pure algorithm.

   The narrow plan generator below fixes one object per call site so
   that effective key assignment never multiplexes two generated
   objects onto one key — key grouping is a deliberate
   over-approximation of the MPK design that the idealized
   per-object-key algorithm cannot express.  Even so, exact agreement
   is not the contract: the runtime's fault-driven view legitimately
   diverges from the replayed event order through a handful of
   documented mechanisms (release-window rescue, RO-domain write
   blame, proactive entry-walk holds, interleave pruning, demotion),
   each of which stamps a per-object provenance bit.  The tier-1
   contract is {e evidence-bounded agreement}: every disagreement in
   either direction must be explained by the matching provenance bit
   on that object — an over-report with no precision-losing mechanism
   on record, or a silent miss with none, still fails.

   The full-surface generator from [lib/fuzz] drops the
   one-object-per-site restriction (object reuse, >13 live objects,
   nested and inconsistent locking, atomics): there the two detectors
   diverge more broadly, but only within the documented taxonomy —
   every divergence must classify as expected ([wide] cases below; the
   10k campaign in EXPERIMENTS.md is the full-strength version). *)

module Machine = Kard_sched.Machine
module Program = Kard_sched.Program
module Op = Kard_sched.Op
module Hooks = Kard_sched.Hooks
module Detector = Kard_core.Detector
module A = Kard_core.Algorithm

let n_objects = 4
let n_locks = 3

type round = {
  r_obj : int;             (* also the call site *)
  r_lock : int;
  r_ops : [ `R | `W ] list;
}

type plan = round list list (* one list of rounds per thread *)

let plan_gen =
  let open QCheck.Gen in
  let round =
    let* r_obj = int_range 0 (n_objects - 1) in
    let* r_lock = int_range 0 (n_locks - 1) in
    let* r_ops = list_size (int_range 1 3) (oneofl [ `R; `W ]) in
    return { r_obj; r_lock; r_ops }
  in
  list_size (int_range 2 3) (list_size (int_range 0 6) round)

let print_plan plan =
  String.concat "\n"
    (List.mapi
       (fun t rounds ->
         Printf.sprintf "thread %d: %s" t
           (String.concat " "
              (List.map
                 (fun r ->
                   Printf.sprintf "(o%d,l%d,[%s])" r.r_obj r.r_lock
                     (String.concat ""
                        (List.map (function `R -> "R" | `W -> "W") r.r_ops)))
                 rounds)))
       plan)

let trace_event_of_hooks trace bases =
  let obj_of_addr addr =
    let rec find i =
      if i >= n_objects then None
      else if addr >= bases.(i) && addr < bases.(i) + 64 then Some i
      else find (i + 1)
    in
    find 0
  in
  fun (hooks : Hooks.t) ->
    { hooks with
      Hooks.on_lock =
        (fun ~tid ~lock ~site ->
          trace := A.Enter { thread = tid; section = site } :: !trace;
          hooks.Hooks.on_lock ~tid ~lock ~site);
      on_unlock =
        (fun ~tid ~lock ->
          trace := A.Exit { thread = tid } :: !trace;
          hooks.Hooks.on_unlock ~tid ~lock);
      on_read =
        (fun ~tid ~addr ->
          (match obj_of_addr addr with
          | Some obj -> trace := A.Read { thread = tid; obj } :: !trace
          | None -> ());
          hooks.Hooks.on_read ~tid ~addr);
      on_write =
        (fun ~tid ~addr ->
          (match obj_of_addr addr with
          | Some obj -> trace := A.Write { thread = tid; obj } :: !trace
          | None -> ());
          hooks.Hooks.on_write ~tid ~addr) }

type outcome = {
  kard_objs : int list;    (* plan indices the runtime flagged *)
  pure_objs : int list;    (* plan indices Algorithm 1 flagged *)
  prov : int -> Detector.provenance;  (* by plan index *)
}

let run_plan ~seed (plan : plan) =
  let cell = ref None in
  let trace = ref [] in
  let bases = Array.make n_objects 0 in
  let ids = Array.make n_objects (-1) in
  let allocated = ref 0 in
  let make_detector env = trace_event_of_hooks trace bases (Detector.make ~cell env) in
  let machine =
    Machine.create ~seed
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector ()
  in
  let round_program r =
    Program.delay (fun () ->
        let addr = bases.(r.r_obj) in
        let body =
          List.map (fun op -> match op with `R -> Op.Read addr | `W -> Op.Write addr) r.r_ops
        in
        Program.of_list
          (Kard_workloads.Builder.critical_section ~lock:(100 + r.r_lock) ~site:(10 + r.r_obj)
             ((body @ [ Op.Compute 5_000 ]))))
  in
  let thread_program tid rounds =
    let work =
      Program.concat
        [ Kard_workloads.Builder.wait_until (fun () -> !allocated >= n_objects);
          Program.concat (List.map round_program rounds) ]
    in
    if tid = 0 then
      Program.append
        (Kard_workloads.Builder.alloc_many ~n:n_objects ~size:64 ~site:7000
           ~into:(fun i meta ->
             bases.(i) <- meta.Kard_alloc.Obj_meta.base;
             ids.(i) <- meta.Kard_alloc.Obj_meta.id;
             incr allocated))
        work
    else work
  in
  List.iteri (fun tid rounds -> ignore (Machine.spawn machine (thread_program tid rounds) : int)) plan;
  let (_ : Machine.report) = Machine.run machine in
  let detector = Option.get !cell in
  let kard_objs =
    List.sort_uniq compare
      (List.filter_map
         (fun (r : Kard_core.Race_record.t) ->
           let rec find i =
             if i >= n_objects then None
             else if r.Kard_core.Race_record.obj_base = bases.(i) then Some i
             else find (i + 1)
           in
           find 0)
         (Detector.races detector))
  in
  let pure = A.create () in
  let pure_races = A.run pure (List.rev !trace) in
  let pure_objs = List.sort_uniq compare (List.map (fun (r : A.race) -> r.A.obj) pure_races) in
  { kard_objs; pure_objs; prov = (fun i -> Detector.provenance detector ~obj_id:ids.(i)) }

(* The evidence-bounded agreement contract.  An over-report (runtime
   flags an object Algorithm 1 does not) is legitimate only under a
   mechanism that blames without an algorithm-granted hold: the
   release-timestamp rescue window, RO-domain write-fault blame, or a
   proactive entry-walk hold (contested keys skipped at entry, nested
   exits dropping an outer hold — the QCHECK_SEED=182957440 repro is
   exactly this class).  An under-report is legitimate only when the
   object's record or association was discarded: interleave pruning,
   demotion to Not-accessed, or invisibility in the Read-only
   domain. *)
let explained (o : outcome) =
  List.for_all
    (fun i ->
      List.mem i o.pure_objs
      ||
      let p = o.prov i in
      p.Detector.rescued || p.Detector.ro_blamed || p.Detector.proactive_blamed)
    o.kard_objs
  && List.for_all
       (fun i ->
         List.mem i o.kard_objs
         ||
         let p = o.prov i in
         p.Detector.pruned || p.Detector.demoted || p.Detector.ro_identified)
       o.pure_objs

let explain_failure ~seed plan (o : outcome) =
  Printf.sprintf "seed %d: kard=[%s] pure=[%s]\n%s" seed
    (String.concat ";" (List.map string_of_int o.kard_objs))
    (String.concat ";" (List.map string_of_int o.pure_objs))
    (print_plan plan)

let differential_prop =
  QCheck.Test.make ~name:"kard and Algorithm 1 agree modulo provenance evidence" ~count:120
    (QCheck.make ~print:print_plan plan_gen)
    (fun plan ->
      let o = run_plan ~seed:11 plan in
      explained o || QCheck.Test.fail_report (explain_failure ~seed:11 plan o))

let seeds_prop =
  QCheck.Test.make ~name:"agreement holds across scheduler seeds" ~count:40
    (QCheck.make ~print:print_plan plan_gen)
    (fun plan ->
      List.for_all
        (fun seed ->
          let o = run_plan ~seed plan in
          explained o || QCheck.Test.fail_report (explain_failure ~seed plan o))
        [ 2; 3 ])

let test_known_racy_plan () =
  (* Two threads, same object, different locks: both must flag it. *)
  let plan =
    [ [ { r_obj = 0; r_lock = 0; r_ops = [ `W ] }; { r_obj = 0; r_lock = 0; r_ops = [ `W ] } ];
      [ { r_obj = 0; r_lock = 1; r_ops = [ `W ] }; { r_obj = 0; r_lock = 1; r_ops = [ `W ] } ] ]
  in
  let o = run_plan ~seed:11 plan in
  Alcotest.(check (list int)) "pure flags object 0" [ 0 ] o.pure_objs;
  Alcotest.(check (list int)) "kard flags object 0" [ 0 ] o.kard_objs

let test_known_clean_plan () =
  (* Consistent locking: nobody flags anything. *)
  let plan =
    [ [ { r_obj = 1; r_lock = 2; r_ops = [ `W; `R ] } ];
      [ { r_obj = 1; r_lock = 2; r_ops = [ `W ] } ];
      [ { r_obj = 2; r_lock = 0; r_ops = [ `R ] } ] ]
  in
  let o = run_plan ~seed:11 plan in
  Alcotest.(check (list int)) "pure clean" [] o.pure_objs;
  Alcotest.(check (list int)) "kard clean" [] o.kard_objs

(* The minimized repro for the historical flake (CHANGES.md PR 8,
   QCHECK_SEED=182957440): thread 1's nested revisits of o2 under l0
   while thread 0 writes o2 under l0/l2 produce a race record whose
   blamed hold was formed by the proactive entry walk — Algorithm 1
   never grants it, so the runtime over-reports o2 with the
   [proactive_blamed] bit set.  Locked in as a regression test: the
   record must survive, and the evidence contract must explain it. *)
let test_proactive_repro_plan () =
  let r obj lock ops = { r_obj = obj; r_lock = lock; r_ops = ops } in
  let plan =
    [ [ r 2 2 [ `W; `R ]; r 0 2 [ `R; `W ]; r 2 2 [ `R; `R; `W ]; r 2 0 [ `R; `W; `R ] ];
      [ r 3 1 [ `R; `R ]; r 3 2 [ `W; `W; `W ]; r 2 0 [ `W ]; r 2 0 [ `R ]; r 1 0 [ `W; `R ] ] ]
  in
  let o = run_plan ~seed:11 plan in
  Alcotest.(check bool) "evidence explains the divergence" true (explained o);
  if not (List.equal Int.equal o.kard_objs o.pure_objs) then
    List.iter
      (fun i ->
        if not (List.mem i o.pure_objs) then
          Alcotest.(check bool)
            (Printf.sprintf "over-report of o%d carries blame evidence" i)
            true
            (let p = o.prov i in
             p.Detector.rescued || p.Detector.ro_blamed || p.Detector.proactive_blamed))
      o.kard_objs

(* {1 Wide generator: full surface, taxonomy-bounded divergence}

   The one-object-per-call-site restriction is gone: programs from
   the fuzz generator exercise grouping, recycling, sharing, soft-key
   spill, demotion and the RO domain.  Exact agreement is impossible
   by design; the contract is that the multi-oracle classifier
   explains every disagreement with a documented class. *)

let run_wide ~base ~configs n =
  List.iteri
    (fun ci config ->
      for i = 0 to n - 1 do
        let rand = Random.State.make [| base + ci; i |] in
        let prog = Kard_fuzz.Prog.generate ~rand () in
        let mseed = Random.State.int rand 1_000_000 in
        let o = Kard_fuzz.Harness.run ~config ~seed:mseed prog in
        if o.Kard_fuzz.Harness.unexpected then
          Alcotest.failf "config %d, program %d diverged outside the taxonomy:@ %a" ci i
            Kard_fuzz.Harness.pp_outcome o
      done)
    configs

let test_wide_default_config () =
  run_wide ~base:500 ~configs:[ Kard_core.Config.default ] 30

let test_wide_pressure_configs () =
  (* 4 data keys force grouping/recycling/sharing; By_lock coarsens
     section identity.  All divergence must still classify. *)
  let d = Kard_core.Config.default in
  run_wide ~base:600
    ~configs:
      [ { d with Kard_core.Config.data_keys = 4 };
        { d with Kard_core.Config.data_keys = 4; software_fallback = true };
        { d with Kard_core.Config.section_identity = Kard_core.Config.By_lock } ]
    12

let () =
  Alcotest.run "kard_differential"
    [ ( "differential",
        [ Alcotest.test_case "known racy plan" `Quick test_known_racy_plan;
          Alcotest.test_case "known clean plan" `Quick test_known_clean_plan;
          Alcotest.test_case "proactive-hold over-report repro" `Quick test_proactive_repro_plan;
          QCheck_alcotest.to_alcotest differential_prop;
          QCheck_alcotest.to_alcotest seeds_prop ] );
      ( "wide",
        [ Alcotest.test_case "full-surface generator, default config" `Quick
            test_wide_default_config;
          Alcotest.test_case "full-surface generator, pressure configs" `Quick
            test_wide_pressure_configs ] ) ]
