(* Differential testing: the operational MPK-driven runtime must agree
   with the pure Algorithm 1 on which objects are racy.

   Random multi-threaded programs are executed on the simulated
   machine under the Kard detector while a tracing wrapper records the
   interleaved Enter/Exit/Read/Write event sequence actually executed;
   the same sequence is then replayed through the pure algorithm.

   The narrow plan generator below fixes one object per call site so
   that effective key assignment never multiplexes two generated
   objects onto one key — key grouping is a deliberate
   over-approximation of the MPK design that the idealized
   per-object-key algorithm cannot express, so under this restriction
   the runtime and Algorithm 1 must agree {e exactly}.  It stays as
   the fast tier-1 contract.

   The full-surface generator from [lib/fuzz] drops that restriction
   (object reuse, >13 live objects, nested and inconsistent locking,
   atomics): there the two detectors may diverge, but only within the
   documented taxonomy — every divergence must classify as expected
   ([wide] cases below; the 10k campaign in EXPERIMENTS.md is the
   full-strength version). *)

module Machine = Kard_sched.Machine
module Program = Kard_sched.Program
module Op = Kard_sched.Op
module Hooks = Kard_sched.Hooks
module Detector = Kard_core.Detector
module A = Kard_core.Algorithm

let n_objects = 4
let n_locks = 3

type round = {
  r_obj : int;             (* also the call site *)
  r_lock : int;
  r_ops : [ `R | `W ] list;
}

type plan = round list list (* one list of rounds per thread *)

let plan_gen =
  let open QCheck.Gen in
  let round =
    let* r_obj = int_range 0 (n_objects - 1) in
    let* r_lock = int_range 0 (n_locks - 1) in
    let* r_ops = list_size (int_range 1 3) (oneofl [ `R; `W ]) in
    return { r_obj; r_lock; r_ops }
  in
  list_size (int_range 2 3) (list_size (int_range 0 6) round)

let trace_event_of_hooks trace bases =
  let obj_of_addr addr =
    let rec find i =
      if i >= n_objects then None
      else if addr >= bases.(i) && addr < bases.(i) + 64 then Some i
      else find (i + 1)
    in
    find 0
  in
  fun (hooks : Hooks.t) ->
    { hooks with
      Hooks.on_lock =
        (fun ~tid ~lock ~site ->
          trace := A.Enter { thread = tid; section = site } :: !trace;
          hooks.Hooks.on_lock ~tid ~lock ~site);
      on_unlock =
        (fun ~tid ~lock ->
          trace := A.Exit { thread = tid } :: !trace;
          hooks.Hooks.on_unlock ~tid ~lock);
      on_read =
        (fun ~tid ~addr ->
          (match obj_of_addr addr with
          | Some obj -> trace := A.Read { thread = tid; obj } :: !trace
          | None -> ());
          hooks.Hooks.on_read ~tid ~addr);
      on_write =
        (fun ~tid ~addr ->
          (match obj_of_addr addr with
          | Some obj -> trace := A.Write { thread = tid; obj } :: !trace
          | None -> ());
          hooks.Hooks.on_write ~tid ~addr) }

let run_plan ~seed (plan : plan) =
  let cell = ref None in
  let trace = ref [] in
  let bases = Array.make n_objects 0 in
  let allocated = ref 0 in
  let make_detector env = trace_event_of_hooks trace bases (Detector.make ~cell env) in
  let machine =
    Machine.create ~seed
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector ()
  in
  let round_program r =
    Program.delay (fun () ->
        let addr = bases.(r.r_obj) in
        let body =
          List.map (fun op -> match op with `R -> Op.Read addr | `W -> Op.Write addr) r.r_ops
        in
        Program.of_list
          (Kard_workloads.Builder.critical_section ~lock:(100 + r.r_lock) ~site:(10 + r.r_obj)
             ((body @ [ Op.Compute 5_000 ]))))
  in
  let thread_program tid rounds =
    let work =
      Program.concat
        [ Kard_workloads.Builder.wait_until (fun () -> !allocated >= n_objects);
          Program.concat (List.map round_program rounds) ]
    in
    if tid = 0 then
      Program.append
        (Kard_workloads.Builder.alloc_many ~n:n_objects ~size:64 ~site:7000
           ~into:(fun i meta ->
             bases.(i) <- meta.Kard_alloc.Obj_meta.base;
             incr allocated))
        work
    else work
  in
  List.iteri (fun tid rounds -> ignore (Machine.spawn machine (thread_program tid rounds) : int)) plan;
  let (_ : Machine.report) = Machine.run machine in
  let detector = Option.get !cell in
  let kard_objs =
    List.sort_uniq compare
      (List.filter_map
         (fun (r : Kard_core.Race_record.t) ->
           let rec find i =
             if i >= n_objects then None
             else if r.Kard_core.Race_record.obj_base = bases.(i) then Some i
             else find (i + 1)
           in
           find 0)
         (Detector.races detector))
  in
  let pure = A.create () in
  let pure_races = A.run pure (List.rev !trace) in
  let pure_objs = List.sort_uniq compare (List.map (fun (r : A.race) -> r.A.obj) pure_races) in
  (kard_objs, pure_objs)

let subset a b = List.for_all (fun x -> List.mem x b) a

let differential_prop =
  QCheck.Test.make ~name:"kard and Algorithm 1 agree on racy objects" ~count:120
    (QCheck.make ~print:(fun _ -> "<plan>") plan_gen)
    (fun plan ->
      let kard_objs, pure_objs = run_plan ~seed:11 plan in
      subset kard_objs pure_objs && subset pure_objs kard_objs)

let seeds_prop =
  QCheck.Test.make ~name:"agreement holds across scheduler seeds" ~count:40
    (QCheck.make ~print:(fun _ -> "<plan>") plan_gen)
    (fun plan ->
      List.for_all
        (fun seed ->
          let kard_objs, pure_objs = run_plan ~seed plan in
          subset kard_objs pure_objs && subset pure_objs kard_objs)
        [ 2; 3 ])

let test_known_racy_plan () =
  (* Two threads, same object, different locks: both must flag it. *)
  let plan =
    [ [ { r_obj = 0; r_lock = 0; r_ops = [ `W ] }; { r_obj = 0; r_lock = 0; r_ops = [ `W ] } ];
      [ { r_obj = 0; r_lock = 1; r_ops = [ `W ] }; { r_obj = 0; r_lock = 1; r_ops = [ `W ] } ] ]
  in
  let kard_objs, pure_objs = run_plan ~seed:11 plan in
  Alcotest.(check (list int)) "pure flags object 0" [ 0 ] pure_objs;
  Alcotest.(check (list int)) "kard flags object 0" [ 0 ] kard_objs

let test_known_clean_plan () =
  (* Consistent locking: nobody flags anything. *)
  let plan =
    [ [ { r_obj = 1; r_lock = 2; r_ops = [ `W; `R ] } ];
      [ { r_obj = 1; r_lock = 2; r_ops = [ `W ] } ];
      [ { r_obj = 2; r_lock = 0; r_ops = [ `R ] } ] ]
  in
  let kard_objs, pure_objs = run_plan ~seed:11 plan in
  Alcotest.(check (list int)) "pure clean" [] pure_objs;
  Alcotest.(check (list int)) "kard clean" [] kard_objs

(* {1 Wide generator: full surface, taxonomy-bounded divergence}

   The one-object-per-call-site restriction is gone: programs from
   the fuzz generator exercise grouping, recycling, sharing, soft-key
   spill, demotion and the RO domain.  Exact agreement is impossible
   by design; the contract is that the multi-oracle classifier
   explains every disagreement with a documented class. *)

let run_wide ~base ~configs n =
  List.iteri
    (fun ci config ->
      for i = 0 to n - 1 do
        let rand = Random.State.make [| base + ci; i |] in
        let prog = Kard_fuzz.Prog.generate ~rand () in
        let mseed = Random.State.int rand 1_000_000 in
        let o = Kard_fuzz.Harness.run ~config ~seed:mseed prog in
        if o.Kard_fuzz.Harness.unexpected then
          Alcotest.failf "config %d, program %d diverged outside the taxonomy:@ %a" ci i
            Kard_fuzz.Harness.pp_outcome o
      done)
    configs

let test_wide_default_config () =
  run_wide ~base:500 ~configs:[ Kard_core.Config.default ] 30

let test_wide_pressure_configs () =
  (* 4 data keys force grouping/recycling/sharing; By_lock coarsens
     section identity.  All divergence must still classify. *)
  let d = Kard_core.Config.default in
  run_wide ~base:600
    ~configs:
      [ { d with Kard_core.Config.data_keys = 4 };
        { d with Kard_core.Config.data_keys = 4; software_fallback = true };
        { d with Kard_core.Config.section_identity = Kard_core.Config.By_lock } ]
    12

let () =
  Alcotest.run "kard_differential"
    [ ( "differential",
        [ Alcotest.test_case "known racy plan" `Quick test_known_racy_plan;
          Alcotest.test_case "known clean plan" `Quick test_known_clean_plan;
          QCheck_alcotest.to_alcotest differential_prop;
          QCheck_alcotest.to_alcotest seeds_prop ] );
      ( "wide",
        [ Alcotest.test_case "full-surface generator, default config" `Quick
            test_wide_default_config;
          Alcotest.test_case "full-surface generator, pressure configs" `Quick
            test_wide_pressure_configs ] ) ]
