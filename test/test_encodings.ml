(* QCheck round-trip properties for the bit-level encodings the
   detector leans on: Perm's two PKRU bits, the full PKRU register,
   and Key_sets token identity/membership. *)

module Perm = Kard_mpk.Perm
module Pkey = Kard_mpk.Pkey
module Pkru = Kard_mpk.Pkru
module Key_sets = Kard_core.Key_sets

let perms = [ Perm.No_access; Perm.Read_only; Perm.Read_write ]
let perm_gen = QCheck.oneofl perms
let pkey_gen = QCheck.map Pkey.of_int (QCheck.int_bound 15)

(* {1 Perm bits} *)

let perm_bits_roundtrip =
  QCheck.Test.make ~name:"perm to_bits/of_bits roundtrip" ~count:100 perm_gen (fun p ->
      Perm.equal p (Perm.of_bits (Perm.to_bits p)))

let perm_of_bits_total =
  QCheck.Test.make ~name:"perm of_bits total on 2 bits, allows agrees" ~count:100
    (QCheck.int_bound 3) (fun bits ->
      let p = Perm.of_bits bits in
      let ad = bits land 1 = 1 and wd = bits land 2 = 2 in
      Perm.allows p `Read = not ad && Perm.allows p `Write = not (ad || wd))

(* {1 Pkru register} *)

let pkru_int_roundtrip =
  QCheck.Test.make ~name:"pkru of_int/to_int roundtrip" ~count:500
    (QCheck.map (fun bits -> bits land 0xFFFFFFFF) QCheck.int) (fun v ->
      Pkru.to_int (Pkru.of_int v) = v)

let pkru_assignments_roundtrip =
  QCheck.Test.make ~name:"pkru of_assignments then get" ~count:500
    (QCheck.small_list (QCheck.pair pkey_gen perm_gen)) (fun assignments ->
      let pkru = Pkru.of_assignments assignments in
      (* The last assignment to each key wins; unassigned keys stay
         denied (except the always-RW k0). *)
      List.for_all
        (fun k ->
          let expect =
            match List.filter (fun (k', _) -> Pkey.to_int k' = Pkey.to_int k) assignments with
            | [] -> if Pkey.to_int k = 0 then Perm.Read_write else Perm.No_access
            | l -> snd (List.nth l (List.length l - 1))
          in
          Perm.equal (Pkru.get pkru k) expect)
        (List.init 16 Pkey.of_int))

let pkru_grants_matches_get =
  QCheck.Test.make ~name:"pkru grants agrees with get+allows" ~count:500
    (QCheck.pair (QCheck.small_list (QCheck.pair pkey_gen perm_gen)) pkey_gen)
    (fun (assignments, k) ->
      let pkru = Pkru.of_assignments assignments in
      Pkru.grants pkru k `Read = Perm.allows (Pkru.get pkru k) `Read
      && Pkru.grants pkru k `Write = Perm.allows (Pkru.get pkru k) `Write)

(* {1 Key_sets tokens} *)

let key_gen =
  QCheck.map
    (fun (w, obj) -> if w then Key_sets.Wk obj else Key_sets.Rk obj)
    QCheck.(pair bool (int_bound 1000))

let key_identity =
  QCheck.Test.make ~name:"key token obj/is_read/is_write identity" ~count:500 key_gen (fun k ->
      match k with
      | Key_sets.Rk o -> Key_sets.obj k = o && Key_sets.is_read k && not (Key_sets.is_write k)
      | Key_sets.Wk o -> Key_sets.obj k = o && Key_sets.is_write k && not (Key_sets.is_read k))

let key_set_membership =
  QCheck.Test.make ~name:"key set membership matches equal" ~count:500
    QCheck.(pair (small_list key_gen) key_gen) (fun (keys, probe) ->
      let set = Key_sets.Set.of_list keys in
      Key_sets.Set.mem probe set = List.exists (Key_sets.equal probe) keys)

let key_rw_distinct =
  QCheck.Test.make ~name:"Rk and Wk of one object are distinct members" ~count:200
    (QCheck.int_bound 1000) (fun o ->
      let set = Key_sets.Set.singleton (Key_sets.Rk o) in
      Key_sets.Set.mem (Key_sets.Rk o) set
      && (not (Key_sets.Set.mem (Key_sets.Wk o) set))
      && Key_sets.compare (Key_sets.Rk o) (Key_sets.Wk o) <> 0)

let () =
  Alcotest.run "kard_encodings"
    [ ( "perm",
        [ QCheck_alcotest.to_alcotest perm_bits_roundtrip;
          QCheck_alcotest.to_alcotest perm_of_bits_total ] );
      ( "pkru",
        [ QCheck_alcotest.to_alcotest pkru_int_roundtrip;
          QCheck_alcotest.to_alcotest pkru_assignments_roundtrip;
          QCheck_alcotest.to_alcotest pkru_grants_matches_get ] );
      ( "key_sets",
        [ QCheck_alcotest.to_alcotest key_identity;
          QCheck_alcotest.to_alcotest key_set_membership;
          QCheck_alcotest.to_alcotest key_rw_distinct ] ) ]
