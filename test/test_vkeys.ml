(* The virtual-key layer (DESIGN.md §11): clock residency and the
   pinning predicate in the Vkey table, the identity-mode contract,
   and the whole-run guarantees — results byte-identical at any
   --jobs/--shards with a virtual pool enabled, plus the key-pressure
   precision story that BENCH_pr8.json tracks at full scale. *)

module Vkey = Kard_mpk.Vkey
module Pkey = Kard_mpk.Pkey
module Config = Kard_core.Config
module Keypressure = Kard_workloads.Keypressure
module Runner = Kard_harness.Runner
module Json_report = Kard_harness.Json_report
module Experiments = Kard_harness.Experiments
module Defaults = Kard_harness.Defaults

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let all_evictable ~slot:_ ~vkey:_ = true
let none_evictable ~slot:_ ~vkey:_ = false

(* {1 The table: identity mode} *)

let test_identity () =
  let t = Vkey.identity in
  check "not virtualized" false (Vkey.virtualized t);
  check_int "phys_of is the key itself" 5 (Vkey.phys_of t 5);
  check_int "vkey_of_phys is the key itself" 5 (Vkey.vkey_of_phys t 5);
  check "always resident" true (Vkey.resident t 7);
  (match Vkey.ensure t 7 ~evictable:none_evictable with
  | Vkey.Hit 7 -> ()
  | _ -> Alcotest.fail "identity ensure must hit the key itself");
  let s = Vkey.stats t in
  check_int "counters stay zero" 0
    (s.Vkey.st_hits + s.Vkey.st_misses + s.Vkey.st_loads + s.Vkey.st_evictions
   + s.Vkey.st_stalls)

let test_create_validation () =
  check "pool 0 is identity" false (Vkey.virtualized (Vkey.create ~pool:0 ~phys:[| 1; 2 |]));
  check "pool below the slot count rejected" true
    (try
       ignore (Vkey.create ~pool:1 ~phys:[| 1; 2 |]);
       false
     with Invalid_argument _ -> true);
  check "repeated slot key rejected" true
    (try
       ignore (Vkey.create ~pool:8 ~phys:[| 3; 3 |]);
       false
     with Invalid_argument _ -> true);
  let t = Vkey.create ~pool:6 ~phys:[| 1; 2; 3 |] in
  check "virtualized" true (Vkey.virtualized t);
  check_int "pool size" 6 (Vkey.pool t);
  check_int "slot count" 3 (Vkey.slot_count t);
  check_int "nothing resident yet" 0 (Vkey.resident_count t);
  check "key outside the pool rejected" true
    (try
       ignore (Vkey.phys_of t 7);
       false
     with Invalid_argument _ -> true)

(* {1 The table: clock residency} *)

let test_clock_load_hit_evict () =
  let t = Vkey.create ~pool:5 ~phys:[| 4; 9 |] in
  (match Vkey.ensure t 1 ~evictable:all_evictable with
  | Vkey.Loaded { slot = 4; evicted = -1 } -> ()
  | _ -> Alcotest.fail "first load takes the free slot 4");
  (match Vkey.ensure t 2 ~evictable:all_evictable with
  | Vkey.Loaded { slot = 9; evicted = -1 } -> ()
  | _ -> Alcotest.fail "second load takes the free slot 9");
  (match Vkey.ensure t 1 ~evictable:all_evictable with
  | Vkey.Hit 4 -> ()
  | _ -> Alcotest.fail "resident key hits");
  check_int "both slots resident" 2 (Vkey.resident_count t);
  check_int "reverse map" 2 (Vkey.vkey_of_phys t 9);
  check_int "free query on a non-slot key" (-1) (Vkey.vkey_of_phys t 7);
  (* Both reference bits are set: the clock spends them in one sweep
     and displaces the first slot it revisits. *)
  (match Vkey.ensure t 3 ~evictable:all_evictable with
  | Vkey.Loaded { slot = 4; evicted = 1 } -> ()
  | _ -> Alcotest.fail "second-chance sweep must evict vkey 1 from slot 4");
  check_int "evicted key is unbacked" (-1) (Vkey.phys_of t 1);
  check "evicted key not resident" false (Vkey.resident t 1);
  let s = Vkey.stats t in
  check_int "hits" 1 s.Vkey.st_hits;
  check_int "misses" 3 s.Vkey.st_misses;
  check_int "loads" 3 s.Vkey.st_loads;
  check_int "evictions" 1 s.Vkey.st_evictions

let test_pinning_and_stall () =
  let t = Vkey.create ~pool:4 ~phys:[| 1; 2 |] in
  ignore (Vkey.ensure t 1 ~evictable:all_evictable);
  ignore (Vkey.ensure t 2 ~evictable:all_evictable);
  (match Vkey.ensure t 3 ~evictable:none_evictable with
  | Vkey.Full -> ()
  | _ -> Alcotest.fail "every slot pinned must stall");
  check_int "stall counted" 1 (Vkey.stats t).Vkey.st_stalls;
  check "residency unchanged by a stall" true (Vkey.resident t 1 && Vkey.resident t 2);
  (* A predicate pinning only vkey 1 steers the clock to the other
     slot, whatever the hand position. *)
  (match Vkey.ensure t 3 ~evictable:(fun ~slot:_ ~vkey -> vkey <> 1) with
  | Vkey.Loaded { evicted = 2; _ } -> ()
  | _ -> Alcotest.fail "clock must skip the pinned slot and evict vkey 2");
  check "pinned key survived" true (Vkey.resident t 1)

let test_retag_accounting () =
  let t = Vkey.create ~pool:3 ~phys:[| 1 |] in
  Vkey.note_retag_pages t 7;
  Vkey.note_retag_pages t 5;
  check_int "retag pages accumulate" 12 (Vkey.stats t).Vkey.st_retag_pages

(* {1 Whole runs: determinism with a virtual pool} *)

(* keys-10k at a smoke scale, pool = 2x sections (the tracked sweep's
   own sizing). *)
let smoke_scale = 0.05
let smoke_pool = Experiments.default_keys_pool Keypressure.default.Keypressure.sections

let vkey_config () = { (Defaults.kard_config ()) with Config.vkeys = smoke_pool }

let test_shards_identity () =
  let run shards =
    Runner.run ~shards ~scale:smoke_scale ~detector:(Runner.Kard (vkey_config ()))
      Keypressure.keys_10k
  in
  let r1 = run 1 and r3 = run 3 in
  check "result identical at 1 vs 3 shards" true (r1 = r3);
  check "JSON identical at 1 vs 3 shards" true
    (Json_report.of_result r1 = Json_report.of_result r3)

let smoke_keys ~jobs =
  Experiments.keys ~jobs
    ~points:[ ("10k", Keypressure.default) ]
    ~data_keys:[ 4; Pkey.data_key_count ]
    ~scale:smoke_scale ()

let test_jobs_identity () =
  let b1 = smoke_keys ~jobs:1 and b4 = smoke_keys ~jobs:4 in
  check "keys sweep identical at 1 vs 4 jobs" true (b1 = b4);
  check "keys JSON identical at 1 vs 4 jobs" true
    (Json_report.of_keys_bench ~build:"test" b1 = Json_report.of_keys_bench ~build:"test" b4)

(* {1 Whole runs: the precision story} *)

let row b mode =
  match
    List.find_opt (fun r -> r.Experiments.kp_mode = mode) b.Experiments.kp_rows
  with
  | Some r -> r
  | None -> Alcotest.failf "sweep has no %s row" mode

(* The sweep's reason to exist: with only the physical keys, recycling
   churns through lock associations and silently re-identifies planted
   victims; a virtual pool past the section count keeps every
   association alive, so strictly more of the planted races survive as
   records (BENCH_pr8.json shows the same at full scale). *)
let test_precision_and_counters () =
  let b = smoke_keys ~jobs:2 in
  let phys = row b (Printf.sprintf "phys-%d" Pkey.data_key_count) in
  let virt = row b (Printf.sprintf "vkeys-%d" Pkey.data_key_count) in
  check "virtual rows carry the pool size" true
    (virt.Experiments.kp_vkeys = smoke_pool && phys.Experiments.kp_vkeys = 0);
  check "same planted denominator" true
    (phys.Experiments.kp_planted = virt.Experiments.kp_planted
    && phys.Experiments.kp_planted > 0);
  check "vkeys detect strictly more planted races" true
    (virt.Experiments.kp_detected > phys.Experiments.kp_detected);
  check "vkeys stop the recycling churn" true
    (virt.Experiments.kp_recycling < phys.Experiments.kp_recycling);
  check "the pool rotates through the slots" true
    (virt.Experiments.kp_vkey_loads > 0 && virt.Experiments.kp_vkey_evictions > 0);
  check "physical rows have no vkey traffic" true
    (phys.Experiments.kp_vkey_loads = 0
    && phys.Experiments.kp_vkey_evictions = 0
    && phys.Experiments.kp_vkey_stalls = 0);
  (* The 4-key ablation: fewer residency slots than runnable threads
     forces the documented stall (miss-with-all-slots-pinned) window. *)
  let tight = row b "vkeys-4" in
  check "tight residency stalls" true (tight.Experiments.kp_vkey_stalls > 0)

let () =
  Alcotest.run "kard_vkeys"
    [ ( "table",
        [ Alcotest.test_case "identity mode" `Quick test_identity;
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "clock load/hit/evict" `Quick test_clock_load_hit_evict;
          Alcotest.test_case "pinning and stall" `Quick test_pinning_and_stall;
          Alcotest.test_case "retag accounting" `Quick test_retag_accounting ] );
      ( "determinism",
        [ Alcotest.test_case "keys-10k 1 vs 3 shards" `Quick test_shards_identity;
          Alcotest.test_case "keys sweep 1 vs 4 jobs" `Quick test_jobs_identity ] );
      ( "precision",
        [ Alcotest.test_case "vkeys beat the physical keys" `Quick
            test_precision_and_counters ] ) ]
