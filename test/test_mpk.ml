(* Unit and property tests for the MPK hardware model. *)

module Perm = Kard_mpk.Perm
module Pkey = Kard_mpk.Pkey
module Pkru = Kard_mpk.Pkru
module Page = Kard_mpk.Page
module Page_table = Kard_mpk.Page_table
module Tlb = Kard_mpk.Tlb
module Fault = Kard_mpk.Fault
module Cost_model = Kard_mpk.Cost_model
module Mpk_hw = Kard_mpk.Mpk_hw

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Perm} *)

let test_perm_allows () =
  check "no-access denies read" false (Perm.allows Perm.No_access `Read);
  check "no-access denies write" false (Perm.allows Perm.No_access `Write);
  check "read-only allows read" true (Perm.allows Perm.Read_only `Read);
  check "read-only denies write" false (Perm.allows Perm.Read_only `Write);
  check "read-write allows read" true (Perm.allows Perm.Read_write `Read);
  check "read-write allows write" true (Perm.allows Perm.Read_write `Write)

let test_perm_lattice () =
  check "join widens" true (Perm.equal (Perm.join Perm.Read_only Perm.Read_write) Perm.Read_write);
  check "meet narrows" true (Perm.equal (Perm.meet Perm.Read_only Perm.Read_write) Perm.Read_only);
  check "join with bottom" true (Perm.equal (Perm.join Perm.No_access Perm.Read_only) Perm.Read_only)

let test_perm_bits_roundtrip () =
  List.iter
    (fun p -> check "bits roundtrip" true (Perm.equal p (Perm.of_bits (Perm.to_bits p))))
    [ Perm.No_access; Perm.Read_only; Perm.Read_write ];
  (* The (ad=1, wd=1) encoding also denies access, like hardware. *)
  check "ad+wd denies" true (Perm.equal (Perm.of_bits 0b11) Perm.No_access)

(* {1 Pkey} *)

let test_pkey_reserved () =
  check_int "k0 is default" 0 (Pkey.to_int Pkey.k_def);
  check_int "k14 is read-only domain" 14 (Pkey.to_int Pkey.k_ro);
  check_int "k15 is not-accessed domain" 15 (Pkey.to_int Pkey.k_na);
  check_int "13 data keys" 13 (List.length Pkey.data_keys);
  check "data keys exclude reserved" true
    (List.for_all
       (fun k -> not (List.exists (Pkey.equal k) [ Pkey.k_def; Pkey.k_ro; Pkey.k_na ]))
       Pkey.data_keys)

let test_pkey_bounds () =
  Alcotest.check_raises "negative rejected" (Invalid_argument "Pkey.of_int: -1 outside [0, 15]")
    (fun () -> ignore (Pkey.of_int (-1)));
  Alcotest.check_raises "16 rejected" (Invalid_argument "Pkey.of_int: 16 outside [0, 15]")
    (fun () -> ignore (Pkey.of_int 16))

(* {1 Pkru} *)

let test_pkru_all_access () =
  check_int "all-access register is zero" 0 (Pkru.to_int Pkru.all_access);
  List.iter
    (fun i ->
      check "every key read-write" true
        (Perm.equal (Pkru.get Pkru.all_access (Pkey.of_int i)) Perm.Read_write))
    (List.init Pkey.count Fun.id)

let test_pkru_deny_all_keeps_k0 () =
  check "k0 stays read-write" true (Perm.equal (Pkru.get Pkru.deny_all Pkey.k_def) Perm.Read_write);
  List.iter
    (fun i ->
      if i <> 0 then
        check "other keys denied" true
          (Perm.equal (Pkru.get Pkru.deny_all (Pkey.of_int i)) Perm.No_access))
    (List.init Pkey.count Fun.id)

let test_pkru_set_get () =
  let r = Pkru.set Pkru.deny_all (Pkey.of_int 5) Perm.Read_only in
  check "set key 5 read-only" true (Perm.equal (Pkru.get r (Pkey.of_int 5)) Perm.Read_only);
  check "key 6 untouched" true (Perm.equal (Pkru.get r (Pkey.of_int 6)) Perm.No_access);
  let r2 = Pkru.set r (Pkey.of_int 5) Perm.Read_write in
  check "upgrade to read-write" true (Perm.equal (Pkru.get r2 (Pkey.of_int 5)) Perm.Read_write)

let test_pkru_held_keys () =
  let r = Pkru.of_assignments [ (Pkey.k_ro, Perm.Read_only); (Pkey.k_na, Perm.Read_write) ] in
  let held = Pkru.held_keys r in
  check_int "three held keys (incl. k0)" 3 (List.length held);
  check "k_na held rw" true
    (List.exists (fun (k, p) -> Pkey.equal k Pkey.k_na && Perm.equal p Perm.Read_write) held)

let pkru_roundtrip_prop =
  QCheck.Test.make ~name:"pkru set/get roundtrip" ~count:500
    QCheck.(pair (int_bound 15) (int_bound 2))
    (fun (key, perm_idx) ->
      let perm = List.nth [ Perm.No_access; Perm.Read_only; Perm.Read_write ] perm_idx in
      let r = Pkru.set Pkru.all_access (Pkey.of_int key) perm in
      Perm.equal (Pkru.get r (Pkey.of_int key)) perm)

let pkru_independence_prop =
  QCheck.Test.make ~name:"pkru keys are independent" ~count:500
    QCheck.(triple (int_bound 15) (int_bound 15) (int_bound 2))
    (fun (k1, k2, perm_idx) ->
      QCheck.assume (k1 <> k2);
      let perm = List.nth [ Perm.No_access; Perm.Read_only; Perm.Read_write ] perm_idx in
      let before = Pkru.get Pkru.deny_all (Pkey.of_int k2) in
      let r = Pkru.set Pkru.deny_all (Pkey.of_int k1) perm in
      Perm.equal (Pkru.get r (Pkey.of_int k2)) before)

(* {1 Page} *)

let test_page_geometry () =
  check_int "page size" 4096 Page.size;
  check_int "vpage of 0x2345" 2 (Page.vpage_of_addr 0x2345);
  check_int "offset of 0x2345" 0x345 (Page.offset_in_page 0x2345);
  check_int "base of vpage 2" 0x2000 (Page.base_of_vpage 2)

let test_pages_spanned () =
  check_int "zero-length spans one" 1 (Page.pages_spanned 0x1000 0);
  check_int "within page" 1 (Page.pages_spanned 0x1000 4096);
  check_int "crosses boundary" 2 (Page.pages_spanned 0x1fff 2);
  check_int "three pages" 3 (Page.pages_spanned 0x1800 8192)

(* {1 Page_table} *)

let test_page_table () =
  let pt = Page_table.create () in
  check "default key" true (Pkey.equal (Page_table.pkey_of_addr pt 0x5000) Pkey.k_def);
  let pages = Page_table.set_pkey_range pt ~base:0x5000 ~len:8192 Pkey.k_na in
  check_int "two pages tagged" 2 pages;
  check "tagged page" true (Pkey.equal (Page_table.pkey_of_addr pt 0x5fff) Pkey.k_na);
  check "next page tagged" true (Pkey.equal (Page_table.pkey_of_addr pt 0x6000) Pkey.k_na);
  check "beyond range default" true (Pkey.equal (Page_table.pkey_of_addr pt 0x7000) Pkey.k_def);
  Page_table.clear_range pt ~base:0x5000 ~len:8192;
  check "cleared back to default" true (Pkey.equal (Page_table.pkey_of_addr pt 0x5000) Pkey.k_def);
  check_int "no entries left" 0 (Page_table.entry_count pt)

(* {1 Tlb} *)

let test_tlb_hit_miss () =
  let tlb = Tlb.create ~entries:8 ~ways:2 () in
  check "first touch misses" true (Tlb.access tlb 1 = `Miss);
  check "second touch hits" true (Tlb.access tlb 1 = `Hit);
  check_int "accesses counted" 2 (Tlb.accesses tlb);
  check_int "one miss" 1 (Tlb.misses tlb)

let test_tlb_eviction () =
  let tlb = Tlb.create ~entries:4 ~ways:1 () in
  (* Direct-mapped with 4 sets: pages 0 and 4 collide. *)
  ignore (Tlb.access tlb 0);
  ignore (Tlb.access tlb 4);
  check "0 was evicted" true (Tlb.access tlb 0 = `Miss)

let test_tlb_flush_and_bulk () =
  let tlb = Tlb.create () in
  ignore (Tlb.access tlb 7);
  Tlb.flush tlb;
  check "flush invalidates" true (Tlb.access tlb 7 = `Miss);
  Tlb.note_hits tlb 100;
  Tlb.note_misses tlb 50;
  check_int "bulk accesses" 152 (Tlb.accesses tlb);
  check_int "bulk misses" 52 (Tlb.misses tlb);
  Tlb.reset_stats tlb;
  check_int "reset" 0 (Tlb.accesses tlb)

let test_tlb_lru () =
  let tlb = Tlb.create ~entries:2 ~ways:2 () in
  (* One set, two ways: 0 and 2 fill it; touching 0 makes 2 the LRU. *)
  ignore (Tlb.access tlb 0);
  ignore (Tlb.access tlb 2);
  ignore (Tlb.access tlb 0);
  ignore (Tlb.access tlb 4);
  check "LRU (2) evicted, 0 stays" true (Tlb.access tlb 0 = `Hit);
  check "2 gone" true (Tlb.access tlb 2 = `Miss)

(* The pkey-carrying fast path: [access_translate] must resolve key and
   translation in one lookup, re-walking the page table only on a miss
   or when the table's generation moved since the fill. *)
let test_tlb_pkey_caching () =
  let pt = Page_table.create () in
  Page_table.set_pkey pt 9 (Pkey.of_int 3);
  let tlb = Tlb.create ~entries:8 ~ways:2 () in
  let walks = ref 0 in
  let load () = incr walks; Page_table.pkey_of_vpage pt 9 in
  let probe () = Tlb.access_translate tlb 9 ~gen:(Page_table.generation pt) ~load in
  let k1, hm1 = probe () in
  check "first touch misses" true (hm1 = `Miss);
  check "miss walks the table" true (!walks = 1);
  check "key resolved" true (Pkey.equal k1 (Pkey.of_int 3));
  let k2, hm2 = probe () in
  check "second touch hits" true (hm2 = `Hit);
  check_int "hit performs no walk" 1 !walks;
  check "cached key served" true (Pkey.equal k2 (Pkey.of_int 3));
  (* A page-table write anywhere moves the generation: the next hit
     must re-read the key, but the translation is still cached. *)
  Page_table.set_pkey pt 9 (Pkey.of_int 7);
  let k3, hm3 = probe () in
  check "stale gen still a translation hit" true (hm3 = `Hit);
  check_int "stale gen re-walks" 2 !walks;
  check "fresh key observed" true (Pkey.equal k3 (Pkey.of_int 7));
  let _, hm4 = probe () in
  check "refilled gen hits without walk" true (hm4 = `Hit && !walks = 2);
  check_int "four accesses, one miss" 1 (Tlb.misses tlb);
  check_int "accesses counted" 4 (Tlb.accesses tlb)

(* {1 Mpk_hw} *)

let make_hw () =
  let hw = Mpk_hw.create () in
  Mpk_hw.register_thread hw 0;
  Mpk_hw.register_thread hw 1;
  hw

let test_hw_access_default () =
  let hw = make_hw () in
  (match Mpk_hw.check_access hw ~tid:0 ~addr:0x4000 ~access:`Write ~ip:0 ~time:0 with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "default key should allow access");
  check_int "no faults" 0 (Mpk_hw.stats hw).Mpk_hw.faults

let test_hw_fault_on_denied () =
  let hw = make_hw () in
  let (_ : int) = Mpk_hw.pkey_mprotect hw ~base:0x4000 ~len:4096 Pkey.k_na in
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:0 Pkru.deny_all in
  (match Mpk_hw.check_access hw ~tid:0 ~addr:0x4123 ~access:`Read ~ip:7 ~time:99 with
  | Ok _ -> Alcotest.fail "expected a fault"
  | Error f ->
    check "fault key" true (Pkey.equal f.Fault.pkey Pkey.k_na);
    check_int "fault addr" 0x4123 f.Fault.addr;
    check_int "fault thread" 0 f.Fault.thread;
    check_int "fault ip" 7 f.Fault.ip;
    check_int "fault time" 99 f.Fault.time);
  check_int "fault counted" 1 (Mpk_hw.stats hw).Mpk_hw.faults

let test_hw_per_thread_pkru () =
  let hw = make_hw () in
  let (_ : int) = Mpk_hw.pkey_mprotect hw ~base:0x4000 ~len:4096 (Pkey.of_int 3) in
  let granted = Pkru.set Pkru.deny_all (Pkey.of_int 3) Perm.Read_write in
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:0 granted in
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:1 Pkru.deny_all in
  check "thread 0 can write" true
    (Result.is_ok (Mpk_hw.check_access hw ~tid:0 ~addr:0x4000 ~access:`Write ~ip:0 ~time:0));
  check "thread 1 faults" true
    (Result.is_error (Mpk_hw.check_access hw ~tid:1 ~addr:0x4000 ~access:`Write ~ip:0 ~time:0))

let test_hw_read_only_permission () =
  let hw = make_hw () in
  let key = Pkey.of_int 2 in
  let (_ : int) = Mpk_hw.pkey_mprotect hw ~base:0x8000 ~len:4096 key in
  let ro = Pkru.set Pkru.deny_all key Perm.Read_only in
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:0 ro in
  check "read allowed" true
    (Result.is_ok (Mpk_hw.check_access hw ~tid:0 ~addr:0x8000 ~access:`Read ~ip:0 ~time:0));
  check "write faults" true
    (Result.is_error (Mpk_hw.check_access hw ~tid:0 ~addr:0x8000 ~access:`Write ~ip:0 ~time:0))

let test_hw_costs () =
  let hw = make_hw () in
  let c = Mpk_hw.cost hw in
  check_int "wrpkru cost" c.Cost_model.wrpkru (Mpk_hw.wrpkru hw ~tid:0 Pkru.all_access);
  let _, rd = Mpk_hw.rdpkru hw ~tid:0 in
  check_int "rdpkru cost" c.Cost_model.rdpkru rd;
  let mprotect = Mpk_hw.pkey_mprotect hw ~base:0 ~len:(3 * 4096) Pkey.k_ro in
  check_int "mprotect cost scales with pages"
    (c.Cost_model.pkey_mprotect_base + (3 * c.Cost_model.pkey_mprotect_page))
    mprotect

let test_hw_context_update () =
  let hw = make_hw () in
  (* Reactive assignment: rewriting the saved context is visible but
     does not count as a WRPKRU execution. *)
  let before = (Mpk_hw.stats hw).Mpk_hw.wrpkru_calls in
  Mpk_hw.set_pkru_in_context hw ~tid:1 Pkru.deny_all;
  check_int "no wrpkru counted" before (Mpk_hw.stats hw).Mpk_hw.wrpkru_calls;
  check "context visible" true (Pkru.equal (Mpk_hw.pkru_of hw ~tid:1) Pkru.deny_all)

(* A retag through [pkey_mprotect] must be visible on the very next
   access even though the page's translation is already cached: the
   stale cached pkey may never mask a #GP. *)
let test_hw_retag_faults_despite_tlb_hit () =
  let hw = make_hw () in
  let k3 = Pkey.of_int 3 and k5 = Pkey.of_int 5 in
  let (_ : int) = Mpk_hw.pkey_mprotect hw ~base:0x4000 ~len:4096 k3 in
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:0 (Pkru.set Pkru.deny_all k3 Perm.Read_write) in
  check "access allowed, TLB warmed" true
    (Result.is_ok (Mpk_hw.check_access hw ~tid:0 ~addr:0x4000 ~access:`Write ~ip:0 ~time:0));
  let (_ : int) = Mpk_hw.pkey_mprotect hw ~base:0x4000 ~len:4096 k5 in
  (match Mpk_hw.check_access hw ~tid:0 ~addr:0x4000 ~access:`Write ~ip:1 ~time:1 with
  | Ok _ -> Alcotest.fail "stale cached pkey masked the #GP"
  | Error f -> check "fault sees the new key" true (Pkey.equal f.Fault.pkey k5));
  let s = Mpk_hw.stats hw in
  (* Both accesses translate; the second still hits (translation was
     cached — only the key was refreshed). *)
  check_int "two dTLB accesses" 2 s.Mpk_hw.dtlb_accesses;
  check_int "one dTLB miss" 1 s.Mpk_hw.dtlb_misses

(* Same property for a bare [Page_table.set_pkey] that bypasses the
   pkey_mprotect wrapper: any page-table write moves the generation. *)
let test_hw_direct_page_table_write_not_masked () =
  let hw = make_hw () in
  let k3 = Pkey.of_int 3 in
  let (_ : int) = Mpk_hw.pkey_mprotect hw ~base:0x9000 ~len:4096 k3 in
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:0 (Pkru.set Pkru.deny_all k3 Perm.Read_write) in
  check "warm the TLB" true
    (Result.is_ok (Mpk_hw.check_access hw ~tid:0 ~addr:0x9000 ~access:`Read ~ip:0 ~time:0));
  Page_table.set_pkey (Mpk_hw.page_table hw) (Page.vpage_of_addr 0x9000) Pkey.k_na;
  check "direct retag faults immediately" true
    (Result.is_error (Mpk_hw.check_access hw ~tid:0 ~addr:0x9000 ~access:`Read ~ip:1 ~time:1))

(* The fault path performs (and counts) the translation: denied
   accesses generate real dTLB traffic, and the post-fault retry finds
   a warmed TLB. *)
let test_hw_fault_path_dtlb_accounting () =
  let hw = make_hw () in
  let (_ : int) = Mpk_hw.pkey_mprotect hw ~base:0x4000 ~len:4096 Pkey.k_na in
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:0 Pkru.deny_all in
  check "denied" true
    (Result.is_error (Mpk_hw.check_access hw ~tid:0 ~addr:0x4000 ~access:`Read ~ip:0 ~time:0));
  let s1 = Mpk_hw.stats hw in
  check_int "faulting access translates" 1 s1.Mpk_hw.dtlb_accesses;
  check_int "cold fault misses" 1 s1.Mpk_hw.dtlb_misses;
  check "denied again" true
    (Result.is_error (Mpk_hw.check_access hw ~tid:0 ~addr:0x4000 ~access:`Read ~ip:1 ~time:1));
  let s2 = Mpk_hw.stats hw in
  check_int "retry translates too" 2 s2.Mpk_hw.dtlb_accesses;
  check_int "retry hits the warmed TLB" 1 s2.Mpk_hw.dtlb_misses;
  (* Granting access afterwards charges no extra miss: the fault left
     the translation cached. *)
  let (_ : int) = Mpk_hw.wrpkru hw ~tid:0 (Pkru.set Pkru.deny_all Pkey.k_na Perm.Read_only) in
  check "granted read succeeds" true
    (Result.is_ok (Mpk_hw.check_access hw ~tid:0 ~addr:0x4000 ~access:`Read ~ip:2 ~time:2));
  check_int "still one miss total" 1 (Mpk_hw.stats hw).Mpk_hw.dtlb_misses

let test_cost_model_sanity () =
  let c = Cost_model.default in
  check "wrpkru slower than rdpkru" true (c.Cost_model.wrpkru > c.Cost_model.rdpkru);
  check "fault costs dominate" true (c.Cost_model.fault_roundtrip > c.Cost_model.pkey_mprotect_base);
  check "fault delay equals roundtrip" true
    (Cost_model.fault_delay_threshold c = c.Cost_model.fault_roundtrip);
  let seconds = Cost_model.cycles_to_seconds c 2_100_000_000 in
  check "2.1G cycles is one second" true (abs_float (seconds -. 1.0) < 1e-9)

let () =
  Alcotest.run "kard_mpk"
    [ ( "perm",
        [ Alcotest.test_case "allows" `Quick test_perm_allows;
          Alcotest.test_case "lattice" `Quick test_perm_lattice;
          Alcotest.test_case "bits roundtrip" `Quick test_perm_bits_roundtrip ] );
      ( "pkey",
        [ Alcotest.test_case "reserved keys" `Quick test_pkey_reserved;
          Alcotest.test_case "bounds" `Quick test_pkey_bounds ] );
      ( "pkru",
        [ Alcotest.test_case "all access" `Quick test_pkru_all_access;
          Alcotest.test_case "deny all keeps k0" `Quick test_pkru_deny_all_keeps_k0;
          Alcotest.test_case "set/get" `Quick test_pkru_set_get;
          Alcotest.test_case "held keys" `Quick test_pkru_held_keys;
          QCheck_alcotest.to_alcotest pkru_roundtrip_prop;
          QCheck_alcotest.to_alcotest pkru_independence_prop ] );
      ( "page",
        [ Alcotest.test_case "geometry" `Quick test_page_geometry;
          Alcotest.test_case "pages spanned" `Quick test_pages_spanned ] );
      ("page_table", [ Alcotest.test_case "tag and clear" `Quick test_page_table ]);
      ( "tlb",
        [ Alcotest.test_case "hit/miss" `Quick test_tlb_hit_miss;
          Alcotest.test_case "eviction" `Quick test_tlb_eviction;
          Alcotest.test_case "flush and bulk" `Quick test_tlb_flush_and_bulk;
          Alcotest.test_case "lru" `Quick test_tlb_lru;
          Alcotest.test_case "pkey caching + generation" `Quick test_tlb_pkey_caching ] );
      ( "mpk_hw",
        [ Alcotest.test_case "default access" `Quick test_hw_access_default;
          Alcotest.test_case "fault on denied" `Quick test_hw_fault_on_denied;
          Alcotest.test_case "per-thread pkru" `Quick test_hw_per_thread_pkru;
          Alcotest.test_case "read-only permission" `Quick test_hw_read_only_permission;
          Alcotest.test_case "costs" `Quick test_hw_costs;
          Alcotest.test_case "context update" `Quick test_hw_context_update;
          Alcotest.test_case "retag faults despite TLB hit" `Quick
            test_hw_retag_faults_despite_tlb_hit;
          Alcotest.test_case "direct page-table write not masked" `Quick
            test_hw_direct_page_table_write_not_masked;
          Alcotest.test_case "fault-path dTLB accounting" `Quick
            test_hw_fault_path_dtlb_accounting;
          Alcotest.test_case "cost model sanity" `Quick test_cost_model_sanity ] ) ]
