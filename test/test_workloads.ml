(* Tests for the workload catalog: every model must build, run to
   completion under every detector, reproduce its structural
   statistics, and be race-free (benchmarks) or exhibit exactly its
   documented races (real-world applications). *)

module Spec = Kard_workloads.Spec
module Registry = Kard_workloads.Registry
module Runner = Kard_harness.Runner
module Machine = Kard_sched.Machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let tiny_scale = 0.002

(* The documented-race assertions below count exact detections, so
   they pin the sampling rate at 1.0 (the identity — DESIGN.md §12):
   under an ambient $KARD_SAMPLING the races would legitimately be
   sampled out.  Other knobs ($KARD_VKEYS, $KARD_SHARDS) still apply. *)
let full_kard () =
  { (Kard_harness.Defaults.kard_config ()) with Kard_core.Config.sampling = 1.0 }

(* {1 Catalog shape} *)

let test_registry_complete () =
  check_int "15 benchmarks" 15 (List.length Registry.benchmarks);
  check_int "4 real-world applications" 4 (List.length Registry.real_world);
  check_int "19 total" 19 (List.length Registry.all);
  let names = Registry.names in
  check "names unique" true
    (List.length names = List.length (List.sort_uniq String.compare names))

let test_registry_find () =
  check "finds nginx" true ((Registry.find "nginx").Spec.name = "nginx");
  check "unknown raises" true
    (try
       ignore (Registry.find "doom");
       false
     with Not_found -> true)

(* {1 Every workload completes under every detector} *)

let completion_case (spec : Spec.t) =
  Alcotest.test_case spec.Spec.name `Slow (fun () ->
      List.iter
        (fun detector ->
          let r = Runner.run ~scale:tiny_scale ~detector spec in
          check "made progress" true (r.Runner.report.Machine.cycles > 0))
        [ Runner.Baseline; Runner.Alloc; Runner.Kard (Kard_harness.Defaults.kard_config ()); Runner.Tsan ])

(* {1 Benchmarks are race-free under Kard} *)

let race_free_case (spec : Spec.t) =
  Alcotest.test_case spec.Spec.name `Slow (fun () ->
      let r = Runner.run ~scale:tiny_scale ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ())) spec in
      check_int "no ILU records" 0 (List.length r.Runner.kard_ilu_races))

(* {1 Structural statistics match the paper's columns} *)

let test_structure_sites () =
  List.iter
    (fun (name, expected_sites) ->
      let spec = Registry.find name in
      let r = Runner.run ~scale:tiny_scale ~detector:Runner.Baseline spec in
      check_int (name ^ " unique sections") expected_sites r.Runner.report.Machine.unique_sections)
    [ ("streamcluster", 6); ("x264", 2); ("raytrace", 8); ("lu_ncb", 6); ("fft", 8) ]

let test_structure_scaling () =
  (* Entries scale with the factor; structure (sites) does not. *)
  let spec = Registry.find "raytrace" in
  let small = Runner.run ~scale:0.002 ~detector:Runner.Baseline spec in
  let large = Runner.run ~scale:0.01 ~detector:Runner.Baseline spec in
  check "entries grow with scale" true
    (large.Runner.report.Machine.cs_entries > small.Runner.report.Machine.cs_entries);
  check_int "sites stable" small.Runner.report.Machine.unique_sections
    large.Runner.report.Machine.unique_sections

let test_determinism () =
  let spec = Registry.find "pigz" in
  let r1 = Runner.run ~scale:tiny_scale ~seed:9 ~detector:Runner.Baseline spec in
  let r2 = Runner.run ~scale:tiny_scale ~seed:9 ~detector:Runner.Baseline spec in
  check_int "same seed, same cycles" r1.Runner.report.Machine.cycles
    r2.Runner.report.Machine.cycles

(* {1 The documented real-world races (Table 6)} *)

let distinct_objs races =
  List.length
    (List.sort_uniq compare
       (List.map (fun (r : Kard_core.Race_record.t) -> r.Kard_core.Race_record.obj_id) races))

let app_race_case name expected =
  Alcotest.test_case name `Slow (fun () ->
      let spec = Registry.find name in
      let r = Runner.run ~scale:0.01 ~detector:(Runner.Kard (full_kard ())) spec in
      check_int "racy objects" expected (distinct_objs r.Runner.kard_races))

let test_pigz_fp_is_not_seen_by_tsan () =
  let spec = Registry.find "pigz" in
  let r = Runner.run ~scale:0.01 ~detector:Runner.Tsan spec in
  check_int "granule detector sees nothing" 0 (List.length r.Runner.tsan_races)

let test_aget_race_is_the_counter () =
  let spec = Registry.find "aget" in
  let r = Runner.run ~scale:0.01 ~detector:(Runner.Kard (full_kard ())) spec in
  match r.Runner.kard_ilu_races with
  | race :: _ ->
    check "faulting side is the lock-free reader" true
      (race.Kard_core.Race_record.faulting.Kard_core.Race_record.section = None
      || List.exists
           (fun (h : Kard_core.Race_record.side) -> h.Kard_core.Race_record.section = None)
           race.Kard_core.Race_record.holding)
  | [] -> Alcotest.fail "expected the byte-counter race"

(* {1 Workload builder helpers} *)

let test_builder_scale_factor () =
  let f = Kard_workloads.Builder.scale_factor ~scale:0.01 ~entries:100 ~min_entries:200 in
  check "floor keeps all entries" true (f = 1.0);
  let f2 = Kard_workloads.Builder.scale_factor ~scale:0.01 ~entries:1_000_000 ~min_entries:200 in
  check "large workloads scale" true (f2 = 0.01)

let test_builder_scaled () =
  check_int "rounds" 3 (Kard_workloads.Builder.scaled 0.01 250);
  check_int "never below one" 1 (Kard_workloads.Builder.scaled 0.0001 10);
  check_int "zero stays zero" 0 (Kard_workloads.Builder.scaled 0.5 0)

let test_synth_effective_entries () =
  let p = { Kard_workloads.Synth.default with Kard_workloads.Synth.entries = 1000; min_entries = 100 } in
  check_int "scaled" 100 (Kard_workloads.Synth.effective_entries p ~scale:0.1);
  check_int "floored" 100 (Kard_workloads.Synth.effective_entries p ~scale:0.001)

(* {1 Lock-free benchmarks: the section 7.2 no-overhead claim} *)

let lockfree_case (spec : Spec.t) =
  Alcotest.test_case spec.Spec.name `Slow (fun () ->
      let kard = Runner.run ~scale:tiny_scale ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ())) spec in
      check_int "no critical sections" 0 kard.Runner.report.Machine.cs_entries;
      check_int "no faults" 0 kard.Runner.report.Machine.faults;
      check_int "no races" 0 (List.length kard.Runner.kard_races);
      check_int "nothing identified" 0 (kard.Runner.kard_unique_ro + kard.Runner.kard_unique_rw))

(* {1 Random profiles: the detector never deadlocks, never reports a
   false race on a consistently-locked workload} *)

let profile_gen =
  let open QCheck.Gen in
  let* heap_objects = int_range 0 60 in
  let* globals = int_range 0 20 in
  let* sites = int_range 1 12 in
  let* locks = int_range 1 sites in
  let* entries = int_range 20 120 in
  let* shared_rw = int_range 0 10 in
  let* shared_ro = int_range 0 10 in
  let* rw_writes = int_range 0 3 in
  let* ro_reads = int_range 0 3 in
  let* churn = oneofl [ 0.; 0.1; 1.0 ] in
  let* block = oneofl [ 0; 500 ] in
  return
    { Kard_workloads.Synth.default with
      Kard_workloads.Synth.heap_objects;
      globals;
      sites;
      locks;
      entries;
      shared_rw;
      shared_ro;
      rw_writes_per_entry = rw_writes;
      ro_reads_per_entry = ro_reads;
      churn_per_entry = churn;
      block_accesses = block;
      compute = 500;
      min_entries = 20;
      mode = Kard_workloads.Synth.Partitioned }

let random_profile_prop =
  QCheck.Test.make ~name:"random partitioned profiles are race-free under kard" ~count:60
    (QCheck.make ~print:(fun _ -> "<profile>") profile_gen)
    (fun profile ->
      let cell = ref None in
      let machine =
        Kard_sched.Machine.create ~seed:5
          ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
          ~make_detector:(Kard_core.Detector.make ~cell)
          ()
      in
      Kard_workloads.Synth.build profile ~threads:3 ~scale:1.0 ~seed:5 machine;
      let (_ : Machine.report) = Kard_sched.Machine.run machine in
      Kard_core.Detector.ilu_races (Option.get !cell) = [])

let random_profile_all_detectors_prop =
  QCheck.Test.make ~name:"random profiles complete under every detector" ~count:20
    (QCheck.make ~print:(fun _ -> "<profile>") profile_gen)
    (fun profile ->
      List.for_all
        (fun detector ->
          let spec =
            { Spec.name = "prop";
              category = Spec.Parsec;
              description = "";
              paper = (Registry.find "fft").Spec.paper;
              default_threads = 3;
              build =
                (fun ~threads ~scale ~seed machine ->
                  Kard_workloads.Synth.build profile ~threads ~scale ~seed machine) }
          in
          let r = Runner.run ~scale:1.0 ~detector spec in
          r.Runner.report.Machine.cycles > 0)
        [ Runner.Baseline; Runner.Tsan; Runner.Lockset ])

let () =
  Alcotest.run "kard_workloads"
    [ ( "catalog",
        [ Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "find" `Quick test_registry_find ] );
      ("completion", List.map completion_case Registry.all);
      ("race-free benchmarks", List.map race_free_case Registry.benchmarks);
      ( "structure",
        [ Alcotest.test_case "site counts" `Slow test_structure_sites;
          Alcotest.test_case "scaling" `Slow test_structure_scaling;
          Alcotest.test_case "determinism" `Slow test_determinism ] );
      ( "real-world races",
        [ app_race_case "aget" 1;
          app_race_case "memcached" 3;
          app_race_case "nginx" 1;
          app_race_case "pigz" 1;
          Alcotest.test_case "pigz FP invisible to tsan" `Slow test_pigz_fp_is_not_seen_by_tsan;
          Alcotest.test_case "aget race identity" `Slow test_aget_race_is_the_counter ] );
      ("lock-free", List.map lockfree_case Kard_workloads.Registry.lock_free);
      ( "properties",
        [ QCheck_alcotest.to_alcotest random_profile_prop;
          QCheck_alcotest.to_alcotest random_profile_all_detectors_prop ] );
      ( "builder",
        [ Alcotest.test_case "scale factor" `Quick test_builder_scale_factor;
          Alcotest.test_case "scaled" `Quick test_builder_scaled;
          Alcotest.test_case "effective entries" `Quick test_synth_effective_entries ] ) ]
