(* Tests for the observability layer: the event ring, the metrics
   registry, traced machine runs, the Chrome trace export, and the
   zero-cost claim of the no-op sink. *)

module Ring = Kard_obs.Ring
module Event = Kard_obs.Event
module Metrics = Kard_obs.Metrics
module Window = Kard_obs.Window
module Span = Kard_obs.Span
module Snapshot = Kard_obs.Snapshot
module Trace = Kard_obs.Trace
module Chrome_trace = Kard_obs.Chrome_trace
module Runner = Kard_harness.Runner
module Registry = Kard_workloads.Registry
module Machine = Kard_sched.Machine

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Ring} *)

let test_ring_basic () =
  let r = Ring.create ~capacity:4 in
  check_int "empty" 0 (Ring.length r);
  List.iter (Ring.push r) [ 1; 2; 3 ];
  check "order below capacity" true (Ring.to_list r = [ 1; 2; 3 ]);
  check_int "pushed" 3 (Ring.pushed r);
  check_int "nothing dropped" 0 (Ring.dropped r)

let test_ring_wraps () =
  let r = Ring.create ~capacity:4 in
  List.iter (Ring.push r) [ 1; 2; 3; 4; 5; 6 ];
  check "keeps newest, oldest first" true (Ring.to_list r = [ 3; 4; 5; 6 ]);
  check_int "capacity bounds length" 4 (Ring.length r);
  check_int "pushed counts all" 6 (Ring.pushed r);
  check_int "dropped the overflow" 2 (Ring.dropped r);
  Ring.clear r;
  check_int "clear empties" 0 (Ring.length r)

let test_ring_rejects_bad_capacity () =
  check "zero capacity rejected" true
    (try
       ignore (Ring.create ~capacity:0 : int Ring.t);
       false
     with Invalid_argument _ -> true)

(* {1 Metrics} *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "x" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  check_int "accumulates" 5 (Metrics.counter_value c);
  (* Find-or-create: the same name is the same counter. *)
  Metrics.incr (Metrics.counter m "x");
  check_int "shared by name" 6 (Metrics.counter_value c);
  check "listed sorted" true (Metrics.counters m = [ ("x", 6) ])

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  for v = 1 to 100 do
    Metrics.observe h v
  done;
  let s = Metrics.summary h in
  check_int "count" 100 s.Metrics.count;
  check_int "min exact" 1 s.Metrics.min;
  check_int "max exact" 100 s.Metrics.max;
  check "mean exact" true (abs_float (s.Metrics.mean -. 50.5) < 1e-9);
  check "percentiles ordered" true (s.Metrics.p50 <= s.Metrics.p95 && s.Metrics.p95 <= s.Metrics.p99);
  check "p50 in range" true (s.Metrics.p50 >= 1. && s.Metrics.p50 <= 100.);
  (* Bucket interpolation stays within a doubling of the true rank. *)
  check "p50 near median" true (s.Metrics.p50 >= 25. && s.Metrics.p50 <= 100.)

let test_metrics_constant_histogram () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "const" in
  for _ = 1 to 50 do
    Metrics.observe h 7
  done;
  let s = Metrics.summary h in
  (* Percentiles are clamped to the exact observed range. *)
  check "p50 exact on constants" true (abs_float (s.Metrics.p50 -. 7.) < 1e-9);
  check "p99 exact on constants" true (abs_float (s.Metrics.p99 -. 7.) < 1e-9);
  check "p999 exact on constants" true (abs_float (s.Metrics.p999 -. 7.) < 1e-9)

(* {1 Windowed histograms} *)

let test_window_buckets () =
  (* Log-linear bucketing: values below 64 (two octaves of 32
     sub-buckets) are exact; above that the bucket's inclusive upper
     bound over-reports by at most ~3% (1/32 of an octave). *)
  for v = 0 to 63 do
    check_int "small values exact" v (Window.bucket_upper (Window.bucket_index v))
  done;
  List.iter
    (fun v ->
      let upper = Window.bucket_upper (Window.bucket_index v) in
      check "upper bound never under-reports" true (upper >= v);
      check "relative error within ~3%" true
        (float_of_int (upper - v) <= 0.033 *. float_of_int v))
    [ 64; 100; 1_000; 54_321; 1_000_000; 123_456_789 ]

let test_window_rows () =
  let w = Window.create ~width:1_000 () in
  (* Two samples in window 0, one in window 2; window 1 stays empty. *)
  Window.observe w ~ts:10 100;
  Window.observe w ~ts:900 200;
  Window.observe w ~ts:2_500 50;
  check_int "count totals all windows" 3 (Window.count w);
  let rows = Window.rows w in
  check_int "empty windows omitted" 2 (List.length rows);
  let r0 = List.nth rows 0 and r2 = List.nth rows 1 in
  check_int "first window start" 0 r0.Window.w_start;
  check_int "first window count" 2 r0.Window.count;
  check_int "third window start" 2_000 r2.Window.w_start;
  check_int "max is exact" 200 r0.Window.max;
  let overall = Window.overall w in
  check_int "overall spans the run" 3 overall.Window.count;
  check_int "overall max" 200 overall.Window.max;
  check "percentiles ordered" true
    (overall.Window.p50 <= overall.Window.p95
     && overall.Window.p95 <= overall.Window.p99
     && overall.Window.p99 <= overall.Window.p999
     && overall.Window.p999 <= overall.Window.max)

let test_window_percentiles_known () =
  (* 1..1000 uniform: every percentile's bucket upper bound sits within
     the ~3% bucketing error of the true rank. *)
  let w = Window.create ~width:1_000_000 () in
  for v = 1 to 1_000 do
    Window.observe w ~ts:0 v
  done;
  List.iter
    (fun (q, expect) ->
      let got = float_of_int (Window.percentile w q) in
      check
        (Printf.sprintf "p%g within bucket error" (q *. 100.))
        true
        (got >= expect && got <= expect *. 1.033))
    [ (0.5, 500.); (0.95, 950.); (0.99, 990.); (0.999, 999.) ];
  check_int "max exact" 1_000 (Window.max_value w)

let test_window_determinism () =
  let fill () =
    let w = Window.create ~width:4_096 () in
    for i = 1 to 500 do
      Window.observe w ~ts:(i * 37) (i * i mod 9_001)
    done;
    w
  in
  check "identical fills give identical rows" true (Window.rows (fill ()) = Window.rows (fill ()));
  check "zero width rejected" true
    (try
       ignore (Window.create ~width:0 () : Window.t);
       false
     with Invalid_argument _ -> true)

(* {1 Spans} *)

let test_span_lifecycle () =
  let s = Span.create () in
  Span.open_ s ~id:1 ~lane:0 ~name:"request" ~ts:100;
  Span.open_ s ~id:2 ~lane:1 ~name:"request" ~ts:150;
  check_int "two open" 2 (Span.open_count s);
  Span.close s ~id:2 ~ts:300;
  Span.close s ~id:1 ~ts:400;
  check_int "none left open" 0 (Span.open_count s);
  (* Close order, not open order. *)
  check "closed in close order" true
    (List.map (fun sp -> sp.Span.id) (Span.closed s) = [ 2; 1 ]);
  let sp = List.hd (Span.closed s) in
  check_int "duration" 150 (Span.duration sp);
  Span.close s ~id:99 ~ts:500;
  check_int "stray close counted, not raised" 1 (Span.dropped_closes s);
  (* A span may stop before its recorded start never: clamped. *)
  Span.open_ s ~id:3 ~lane:0 ~name:"request" ~ts:1_000;
  Span.close s ~id:3 ~ts:900;
  let sp3 = List.nth (Span.closed s) 2 in
  check_int "stop clamped to start" 0 (Span.duration sp3)

(* {1 Snapshots} *)

let test_snapshot_of_metrics () =
  let m = Metrics.create () in
  Metrics.incr ~by:3 (Metrics.counter m "reqs");
  Metrics.observe (Metrics.histogram m "lat") 42;
  let w = Metrics.window m ~width:1_000 "lat_w" in
  Window.observe w ~ts:100 7;
  Window.observe w ~ts:1_500 9;
  let s = Snapshot.of_metrics m in
  check_int "counter captured" 3 (Snapshot.find_counter s "reqs");
  check_int "absent counter is zero" 0 (Snapshot.find_counter s "nope");
  (match Snapshot.find_window s "lat_w" with
  | None -> check "window captured" true false
  | Some v ->
      check_int "width captured" 1_000 v.Snapshot.w_width;
      check_int "overall count" 2 v.Snapshot.w_overall.Window.count;
      check_int "two windows" 2 (List.length v.Snapshot.w_rows));
  check "absent window is None" true (Snapshot.find_window s "nope" = None);
  (* Pure data: snapshots of equal registries are structurally equal. *)
  check "snapshot is stable" true (s = Snapshot.of_metrics m)

(* {1 Traced machine runs} *)

let traced_run () =
  let tr = Trace.create () in
  let r =
    Runner.run ~trace:tr ~scale:0.002 ~seed:42 ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ()))
      (Registry.find "memcached")
  in
  (tr, r)

let test_trace_categories () =
  let tr, _ = traced_run () in
  let cats = List.map fst (Trace.category_counts tr) in
  List.iter
    (fun cat -> check (cat ^ " events present") true (List.mem cat cats))
    [ "lock"; "fault"; "pkey"; "alloc" ]

let test_trace_monotone_per_thread () =
  let tr, _ = traced_run () in
  let last = Hashtbl.create 8 in
  List.iter
    (fun (e : Event.t) ->
      (match Hashtbl.find_opt last e.Event.tid with
      | Some prev -> check "timestamps monotone per thread" true (e.Event.ts >= prev)
      | None -> ());
      Hashtbl.replace last e.Event.tid e.Event.ts)
    (Trace.events tr);
  check "saw several threads" true (Hashtbl.length last >= 2)

let test_trace_metrics_populated () =
  let tr, r = traced_run () in
  let m = Trace.metrics tr in
  check "registry populated" false (Metrics.is_empty m);
  let counters = Metrics.counters m in
  let value name = Option.value ~default:0 (List.assoc_opt name counters) in
  check_int "fault counter matches report" r.Runner.report.Machine.faults (value "hw.faults");
  check "fault roundtrips histogrammed" true
    (List.mem_assoc "fault.roundtrip_cycles" (Metrics.histograms m))

(* {1 Chrome trace export} *)

(* Structural JSON validity: balanced braces/brackets outside strings,
   terminated strings, no raw control characters. *)
let json_well_formed s =
  let depth = ref 0 in
  let in_str = ref false in
  let esc = ref false in
  let ok = ref true in
  String.iter
    (fun c ->
      if !in_str then
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
        else if Char.code c < 0x20 then ok := false
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let contains haystack needle =
  let n = String.length needle in
  let rec find i =
    i + n <= String.length haystack && (String.sub haystack i n = needle || find (i + 1))
  in
  find 0

let test_chrome_export () =
  let tr, _ = traced_run () in
  let json = Chrome_trace.to_json ~t:tr in
  check "well formed" true (json_well_formed json);
  check "trace events array" true (contains json "\"traceEvents\":[");
  check "thread metadata" true (contains json "\"thread_name\"");
  check "runtime track" true (contains json "\"runtime\"");
  check "async span begin" true (contains json "\"ph\":\"b\"");
  check "async span end" true (contains json "\"ph\":\"e\"");
  check "instants" true (contains json "\"ph\":\"i\"");
  check "counter track" true (contains json "\"ph\":\"C\"");
  List.iter
    (fun cat -> check ("category " ^ cat) true (contains json ("\"cat\":\"" ^ cat ^ "\"")))
    [ "lock"; "fault"; "pkey"; "alloc" ]

let test_chrome_export_empty () =
  let tr = Trace.create () in
  check "empty trace still valid" true (json_well_formed (Chrome_trace.to_json ~t:tr))

(* {1 The zero-cost no-op sink} *)

let test_tracing_costs_no_cycles () =
  let spec = Registry.find "aget" in
  let detector = Runner.Kard (Kard_harness.Defaults.kard_config ()) in
  let plain = Runner.run ~scale:0.002 ~seed:7 ~detector spec in
  let traced = Runner.run ~trace:(Trace.create ()) ~scale:0.002 ~seed:7 ~detector spec in
  let p = plain.Runner.report and t = traced.Runner.report in
  check_int "identical cycles" p.Machine.cycles t.Machine.cycles;
  check_int "identical wall cycles" p.Machine.wall_cycles t.Machine.wall_cycles;
  check_int "identical faults" p.Machine.faults t.Machine.faults;
  check_int "identical steps" p.Machine.steps t.Machine.steps;
  check_int "identical rss" p.Machine.rss_bytes t.Machine.rss_bytes

let test_step_events_off_by_default () =
  let tr, _ = traced_run () in
  check "no step events unless asked" false
    (List.mem_assoc "step" (Trace.category_counts tr))

let () =
  Alcotest.run "kard_obs"
    [ ( "ring",
        [ Alcotest.test_case "basic" `Quick test_ring_basic;
          Alcotest.test_case "wraps" `Quick test_ring_wraps;
          Alcotest.test_case "bad capacity" `Quick test_ring_rejects_bad_capacity ] );
      ( "metrics",
        [ Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "constant histogram" `Quick test_metrics_constant_histogram ] );
      ( "window",
        [ Alcotest.test_case "bucket error bound" `Quick test_window_buckets;
          Alcotest.test_case "rows" `Quick test_window_rows;
          Alcotest.test_case "known percentiles" `Quick test_window_percentiles_known;
          Alcotest.test_case "determinism" `Quick test_window_determinism ] );
      ( "span",
        [ Alcotest.test_case "lifecycle" `Quick test_span_lifecycle ] );
      ( "snapshot",
        [ Alcotest.test_case "of_metrics" `Quick test_snapshot_of_metrics ] );
      ( "trace",
        [ Alcotest.test_case "categories" `Slow test_trace_categories;
          Alcotest.test_case "monotone per thread" `Slow test_trace_monotone_per_thread;
          Alcotest.test_case "metrics populated" `Slow test_trace_metrics_populated;
          Alcotest.test_case "steps off by default" `Slow test_step_events_off_by_default ] );
      ( "chrome",
        [ Alcotest.test_case "export" `Slow test_chrome_export;
          Alcotest.test_case "empty export" `Quick test_chrome_export_empty ] );
      ( "zero-cost",
        [ Alcotest.test_case "no cycles charged" `Slow test_tracing_costs_no_cycles ] ) ]
