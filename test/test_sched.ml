(* Tests for the simulated machine: programs, locks, scheduling,
   block operations and cycle accounting. *)

module Op = Kard_sched.Op
module Program = Kard_sched.Program
module Lock_table = Kard_sched.Lock_table
module Machine = Kard_sched.Machine
module Hooks = Kard_sched.Hooks
module Sim_clock = Kard_sched.Sim_clock

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Program combinators} *)

let ops_of = Program.to_list

let test_program_of_list () =
  let p = Program.of_list [ Op.Compute 1; Op.Compute 2 ] in
  check_int "two ops" 2 (List.length (ops_of p));
  (* Compiled segments are pure data: a fresh cursor replays them
     (generator state, by contrast, stays one-shot — see repeat). *)
  check_int "segments replay" 2 (List.length (ops_of p))

let test_program_append_concat () =
  let p =
    Program.concat
      [ Program.of_list [ Op.Compute 1 ];
        Program.empty;
        Program.append (Program.of_list [ Op.Compute 2 ]) (Program.of_list [ Op.Compute 3 ]) ]
  in
  check_int "three ops" 3 (List.length (ops_of p))

let test_program_repeat_lazy () =
  let built = ref 0 in
  let p =
    Program.repeat 3 (fun i ->
        incr built;
        Program.of_list [ Op.Compute (i + 1) ])
  in
  check_int "nothing built yet" 0 !built;
  let ops = ops_of p in
  check_int "three ops" 3 (List.length ops);
  check_int "all bodies built" 3 !built;
  check "ordered" true
    (match ops with
    | [ Op.Compute 1; Op.Compute 2; Op.Compute 3 ] -> true
    | _ -> false)

let test_program_unfold () =
  let p = Program.unfold (fun n -> if n = 0 then None else Some (Op.Compute n, n - 1)) 3 in
  check_int "three ops" 3 (List.length (ops_of p))

let test_program_delay () =
  let cell = ref 0 in
  let p =
    Program.append
      (Program.of_list [ Op.Alloc { size = 8; site = 0; on_result = (fun _ -> cell := 7) } ])
      (Program.delay (fun () -> Program.of_list [ Op.Compute !cell ]))
  in
  (* Without a machine, simulate the pull order manually. *)
  let pull = Program.to_thunk p in
  (match pull () with
  | Some (Op.Alloc { on_result; _ }) ->
    on_result
      { Kard_alloc.Obj_meta.id = 0; base = 0x10000; size = 8; reserved = 32;
        kind = Kard_alloc.Obj_meta.Heap 0; pages = 1 }
  | _ -> Alcotest.fail "expected alloc");
  (match pull () with
  | Some (Op.Compute 7) -> ()
  | _ -> Alcotest.fail "delay must see the alloc's effect")

let test_program_with_setup () =
  let ran = ref false in
  let p = Program.with_setup (fun () -> ran := true) (Program.of_list [ Op.Yield ]) in
  let pull = Program.to_thunk p in
  check "setup lazy" false !ran;
  ignore (pull ());
  check "setup ran" true !ran

(* {1 Runnable_set} *)

module Runnable_set = Kard_sched.Runnable_set

let test_runnable_set_basic () =
  let s = Runnable_set.create ~capacity:4 () in
  check_int "empty" 0 (Runnable_set.cardinal s);
  check "min of empty" true (Runnable_set.min_elt s = None);
  List.iter (Runnable_set.add s) [ 3; 0; 2 ];
  check_int "three members" 3 (Runnable_set.cardinal s);
  Runnable_set.add s 2;
  check_int "add is idempotent" 3 (Runnable_set.cardinal s);
  check "mem" true (Runnable_set.mem s 2);
  check "not mem" false (Runnable_set.mem s 1);
  check "ascending" true (Runnable_set.to_list s = [ 0; 2; 3 ]);
  Runnable_set.remove s 2;
  Runnable_set.remove s 2;
  check "removed" true (Runnable_set.to_list s = [ 0; 3 ])

let test_runnable_set_order_statistics () =
  let s = Runnable_set.create ~capacity:8 () in
  List.iter (Runnable_set.add s) [ 5; 1; 7; 3 ];
  check_int "0th largest" 7 (Runnable_set.kth_largest s 0);
  check_int "1st largest" 5 (Runnable_set.kth_largest s 1);
  check_int "3rd largest" 1 (Runnable_set.kth_largest s 3);
  check_int "0th smallest" 1 (Runnable_set.kth_smallest s 0);
  check "first above 3" true (Runnable_set.first_above s 3 = Some 5);
  check "first above -1 is min" true (Runnable_set.first_above s (-1) = Some 1);
  check "first above max" true (Runnable_set.first_above s 7 = None);
  check "min/max" true (Runnable_set.min_elt s = Some 1 && Runnable_set.max_elt s = Some 7);
  check "kth out of range" true
    (try
       ignore (Runnable_set.kth_largest s 4);
       false
     with Invalid_argument _ -> true)

let test_runnable_set_grows () =
  let s = Runnable_set.create ~capacity:2 () in
  Runnable_set.add s 1;
  Runnable_set.add s 77;
  Runnable_set.add s 40;
  check "grown members" true (Runnable_set.to_list s = [ 1; 40; 77 ]);
  check_int "largest after growth" 77 (Runnable_set.kth_largest s 0);
  check "membership preserved" true (Runnable_set.mem s 1)

let test_runnable_set_exhaustive_vs_list () =
  (* Cross-check every query against a sorted-list oracle over a
     random add/remove trace. *)
  let rng = Random.State.make [| 7 |] in
  let s = Runnable_set.create ~capacity:4 () in
  let reference = ref [] in
  for _ = 1 to 2000 do
    let id = Random.State.int rng 50 in
    if Random.State.bool rng then begin
      Runnable_set.add s id;
      if not (List.mem id !reference) then
        reference := List.sort Int.compare (id :: !reference)
    end
    else begin
      Runnable_set.remove s id;
      reference := List.filter (fun x -> x <> id) !reference
    end;
    let n = List.length !reference in
    if Runnable_set.cardinal s <> n then Alcotest.fail "cardinal diverged";
    if Runnable_set.to_list s <> !reference then Alcotest.fail "contents diverged";
    if n > 0 then begin
      let k = Random.State.int rng n in
      if Runnable_set.kth_largest s k <> List.nth (List.rev !reference) k then
        Alcotest.fail "kth_largest diverged"
    end
  done

(* {1 Lock_table} *)

let test_lock_acquire_release () =
  let lt = Lock_table.create () in
  check "acquire free" true (Lock_table.acquire lt ~lock:1 ~tid:0 = Lock_table.Acquired);
  check "owner" true (Lock_table.owner lt ~lock:1 = Some 0);
  check "second must wait" true (Lock_table.acquire lt ~lock:1 ~tid:1 = Lock_table.Must_wait);
  (match Lock_table.release lt ~lock:1 ~tid:0 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "ownership should transfer to waiter");
  check "waiter owns" true (Lock_table.owner lt ~lock:1 = Some 1);
  check "release to none" true (Lock_table.release lt ~lock:1 ~tid:1 = None)

let test_lock_fifo () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
  ignore (Lock_table.acquire lt ~lock:1 ~tid:1);
  ignore (Lock_table.acquire lt ~lock:1 ~tid:2);
  check "first waiter first" true (Lock_table.release lt ~lock:1 ~tid:0 = Some 1);
  check "then second" true (Lock_table.release lt ~lock:1 ~tid:1 = Some 2)

let test_lock_errors () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
  check "relock rejected" true
    (try
       ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
       false
     with Invalid_argument _ -> true);
  check "foreign release rejected" true
    (try
       ignore (Lock_table.release lt ~lock:1 ~tid:5);
       false
     with Invalid_argument _ -> true);
  check "free release rejected" true
    (try
       ignore (Lock_table.release lt ~lock:99 ~tid:0);
       false
     with Invalid_argument _ -> true)

let test_lock_stats () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
  ignore (Lock_table.acquire lt ~lock:1 ~tid:1);
  ignore (Lock_table.acquire lt ~lock:2 ~tid:2);
  check_int "total" 3 (Lock_table.total_acquires lt);
  check_int "contended" 1 (Lock_table.contended_acquires lt);
  check "held_by" true (Lock_table.held_by lt ~tid:2 = [ 2 ])

let test_lock_held_index () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:1 ~tid:0);
  ignore (Lock_table.acquire lt ~lock:2 ~tid:0);
  ignore (Lock_table.acquire lt ~lock:3 ~tid:1);
  check "nested holds, recent first" true (Lock_table.held_by lt ~tid:0 = [ 2; 1 ]);
  check "other thread isolated" true (Lock_table.held_by lt ~tid:1 = [ 3 ]);
  let seen = ref [] in
  Lock_table.iter_held lt ~tid:0 (fun l -> seen := l :: !seen);
  check "iter_held matches held_by" true (List.rev !seen = Lock_table.held_by lt ~tid:0);
  ignore (Lock_table.release lt ~lock:2 ~tid:0);
  check "release shrinks the index" true (Lock_table.held_by lt ~tid:0 = [ 1 ]);
  (* Contended handoff must move the lock between held sets. *)
  ignore (Lock_table.acquire lt ~lock:1 ~tid:1);
  check "waiter not yet an owner" true (Lock_table.held_by lt ~tid:1 = [ 3 ]);
  (match Lock_table.release lt ~lock:1 ~tid:0 with
  | Some 1 -> ()
  | _ -> Alcotest.fail "ownership should transfer");
  check "releaser's index empty" true (Lock_table.held_by lt ~tid:0 = []);
  check "transferred lock in waiter's index" true (Lock_table.held_by lt ~tid:1 = [ 1; 3 ])

let test_lock_waiter_iteration () =
  let lt = Lock_table.create () in
  ignore (Lock_table.acquire lt ~lock:9 ~tid:0);
  ignore (Lock_table.acquire lt ~lock:9 ~tid:2);
  ignore (Lock_table.acquire lt ~lock:9 ~tid:1);
  check_int "two waiters" 2 (Lock_table.waiter_count lt ~lock:9);
  let seen = ref [] in
  Lock_table.iter_waiters lt ~lock:9 (fun tid -> seen := tid :: !seen);
  check "FIFO order" true (List.rev !seen = [ 2; 1 ]);
  check_int "unknown lock has no waiters" 0 (Lock_table.waiter_count lt ~lock:404)

(* {1 Machine} *)

let null_machine ?(seed = 1) () =
  Machine.create ~seed ~allocator:Machine.Native
    ~make_detector:(fun _ -> Hooks.null ~name:"test")
    ()

let test_machine_compute_io () =
  let m = null_machine () in
  let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 100; Op.Io 50 ]) in
  let r = Machine.run m in
  check_int "cycles" 150 r.Machine.cycles;
  check_int "io cycles" 50 r.Machine.io_cycles;
  check_int "steps" 3 r.Machine.steps (* two ops + final None *)

let test_machine_alloc_and_access () =
  let m = null_machine () in
  let base = ref 0 in
  let prog =
    Program.concat
      [ Program.of_list
          [ Op.Alloc { size = 64; site = 1; on_result = (fun meta -> base := meta.Kard_alloc.Obj_meta.base) } ];
        Program.delay (fun () -> Program.of_list [ Op.Write !base; Op.Read !base ]) ]
  in
  let (_ : int) = Machine.spawn m prog in
  let r = Machine.run m in
  check_int "one read" 1 r.Machine.reads;
  check_int "one write" 1 r.Machine.writes;
  check_int "no faults" 0 r.Machine.faults

let test_machine_lock_cs_stats () =
  let m = null_machine () in
  let cs = Kard_workloads.Builder.critical_section ~lock:1 ~site:9 [ Op.Compute 10 ] in
  let (_ : int) = Machine.spawn m (Program.of_list (cs @ cs)) in
  let (_ : int) = Machine.spawn m (Program.of_list cs) in
  let r = Machine.run m in
  check_int "three entries" 3 r.Machine.cs_entries;
  check_int "one site" 1 r.Machine.unique_sections

let test_machine_deadlock_detected () =
  let m = null_machine () in
  (* Two threads each grab one lock then want the other's: with the
     right schedule this deadlocks; with others it completes.  Use a
     schedule-independent deadlock: each thread takes the other's lock
     first via crossing order and a barrier of yields is impossible to
     express, so force it: t0 holds lock 1 forever (never unlocks)
     while t1 wants it. *)
  let (_ : int) =
    Machine.spawn m (Program.of_list [ Op.Lock { lock = 1; site = 1 }; Op.Yield ])
  in
  check "finishing while holding a lock is an error" true
    (try
       ignore (Machine.run m);
       false
     with Machine.Stuck _ -> true)

let test_machine_blocked_thread_waits () =
  let m = null_machine () in
  let order = ref [] in
  let note tag = Op.Alloc { size = 8; site = 0; on_result = (fun _ -> order := tag :: !order) } in
  let (_ : int) =
    Machine.spawn m
      (Program.of_list
         [ Op.Lock { lock = 1; site = 1 }; note "t0-in"; Op.Compute 10; Op.Unlock { lock = 1 } ])
  in
  let (_ : int) =
    Machine.spawn m
      (Program.of_list
         [ Op.Lock { lock = 1; site = 2 }; note "t1-in"; Op.Unlock { lock = 1 } ])
  in
  let r = Machine.run m in
  check_int "both entered" 2 (List.length !order);
  check "mutual exclusion preserved" true (r.Machine.cs_entries = 2)

let test_machine_determinism () =
  let run seed =
    let m = null_machine ~seed () in
    let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 5; Op.Compute 7 ]) in
    let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 11 ]) in
    (Machine.run m).Machine.cycles
  in
  check_int "same seed same cycles" (run 3) (run 3)

let test_machine_block_op () =
  let m = null_machine () in
  let base = ref 0 in
  let prog =
    Program.concat
      [ Program.of_list
          [ Op.Alloc
              { size = 2 * 4096; site = 1; on_result = (fun meta -> base := meta.Kard_alloc.Obj_meta.base) } ];
        Program.delay (fun () ->
            Program.of_list [ Op.Read_block { base = !base; count = 1000; stride = 8; span = 8192 } ]) ]
  in
  let (_ : int) = Machine.spawn m prog in
  let r = Machine.run m in
  check_int "all accesses counted" 1000 r.Machine.reads;
  (* ~count/throughput cycles for the sweep, plus the allocation and
     the sampled page checks. *)
  check "throughput cycles" true (r.Machine.cycles >= 499 && r.Machine.cycles < 20_000)

let test_machine_stall_accounting () =
  (* Detection work inside a held section must also cost the waiters:
     compare a contended run against an uncontended one. *)
  let run ~contended =
    let m = null_machine () in
    let cs =
      [ Op.Lock { lock = 1; site = 1 }; Op.Compute 10_000; Op.Unlock { lock = 1 } ]
    in
    let other_lock = if contended then 1 else 2 in
    let cs2 =
      [ Op.Lock { lock = other_lock; site = 2 }; Op.Compute 10_000; Op.Unlock { lock = other_lock } ]
    in
    let (_ : int) = Machine.spawn m (Program.of_list cs) in
    let (_ : int) = Machine.spawn m (Program.of_list cs2) in
    (Machine.run m).Machine.cycles
  in
  check "contention dilates total cycles" true (run ~contended:true >= run ~contended:false)

let test_machine_max_steps () =
  let m =
    Machine.create ~max_steps:10 ~allocator:Machine.Native
      ~make_detector:(fun _ -> Hooks.null ~name:"test")
      ()
  in
  let forever = Program.unfold (fun () -> Some (Op.Yield, ())) () in
  let (_ : int) = Machine.spawn m forever in
  check "runaway detected" true
    (try
       ignore (Machine.run m);
       false
     with Machine.Stuck _ -> true)

(* {1 Schedule policies and replay} *)

let two_thread_machine ?seed ?schedule () =
  let m = Machine.create ?seed ?schedule ~allocator:Machine.Native
      ~make_detector:(fun _ -> Hooks.null ~name:"test") ()
  in
  let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 1; Op.Compute 2; Op.Compute 3 ]) in
  let (_ : int) = Machine.spawn m (Program.of_list [ Op.Compute 10; Op.Compute 20 ]) in
  Machine.run m

let test_schedule_replay_exact () =
  let original = two_thread_machine ~seed:9 () in
  let replayed =
    two_thread_machine ~schedule:(Kard_sched.Schedule.Replay original.Machine.schedule_trace) ()
  in
  check "same trace" true (original.Machine.schedule_trace = replayed.Machine.schedule_trace);
  check_int "same cycles" original.Machine.cycles replayed.Machine.cycles

let test_schedule_round_robin () =
  let a = two_thread_machine ~schedule:Kard_sched.Schedule.Round_robin () in
  let b = two_thread_machine ~schedule:Kard_sched.Schedule.Round_robin () in
  check "deterministic" true (a.Machine.schedule_trace = b.Machine.schedule_trace);
  (* Strict alternation while both threads are runnable. *)
  check "alternates" true
    (match Array.to_list a.Machine.schedule_trace with
    | 0 :: 1 :: 0 :: 1 :: _ -> true
    | _ -> false)

let test_schedule_replay_short_tape () =
  (* A truncated tape falls back to round-robin rather than failing. *)
  let r = two_thread_machine ~schedule:(Kard_sched.Schedule.Replay [| 1; 1 |]) () in
  check "run completes" true (r.Machine.cycles > 0)

let runnable_of_list tids =
  let set = Kard_sched.Runnable_set.create () in
  List.iter (Kard_sched.Runnable_set.add set) tids;
  set

let test_schedule_pick_unit () =
  let st = Kard_sched.Schedule.start (Kard_sched.Schedule.Replay [| 2; 0 |]) in
  let runnable = runnable_of_list [ 0; 1; 2 ] in
  check_int "replays 2" 2 (Kard_sched.Schedule.pick st ~runnable);
  check_int "replays 0" 0 (Kard_sched.Schedule.pick st ~runnable);
  (* Tape exhausted: round-robin continues after the last pick. *)
  check_int "falls back after tape" 1 (Kard_sched.Schedule.pick st ~runnable);
  check "recorded everything" true (Kard_sched.Schedule.recorded st = [| 2; 0; 1 |])

(* Replay determinism over a genuinely contended, faulting workload:
   the safety net for the scheduler/TLB refactors.  A full Kard run is
   recorded under [Random] and re-executed under [Replay]; every field
   of the report — total and per-thread cycles, faults, hardware
   counters, RSS, schedule trace — must be bit-identical. *)
let contended_kard_report ?schedule ~seed () =
  let cell = ref None in
  let m =
    Machine.create ?schedule ~seed
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Kard_core.Detector.make ~config:Kard_core.Config.default ~cell)
      ()
  in
  let profile =
    { Kard_workloads.Synth.default with
      Kard_workloads.Synth.locks = 2;
      sites = 6;
      entries = 600;
      min_entries = 600;
      shared_rw = 8;
      shared_ro = 4;
      rw_writes_per_entry = 3;
      ro_reads_per_entry = 2;
      cs_compute = 500;
      churn_per_entry = 0.5;
      mode = Kard_workloads.Synth.Striped }
  in
  Kard_workloads.Synth.build profile ~threads:8 ~scale:1.0 ~seed:5 m;
  Machine.run m

let test_replay_full_report_identical () =
  let original = contended_kard_report ~seed:11 () in
  (* The workload must actually exercise the refactored paths. *)
  check "workload contends" true (original.Machine.contended_entries > 0);
  check "workload faults" true (original.Machine.faults > 0);
  check "multi-threaded" true (Array.length original.Machine.per_thread_cycles = 8);
  let replayed =
    contended_kard_report
      ~schedule:(Kard_sched.Schedule.Replay original.Machine.schedule_trace)
      ~seed:11 ()
  in
  check "full report is bit-identical" true (original = replayed);
  (* Same workload, different seed: must diverge (the test would be
     vacuous if the report ignored the schedule). *)
  let other = contended_kard_report ~seed:12 () in
  check "different schedule differs" true
    (other.Machine.schedule_trace <> original.Machine.schedule_trace)

let test_random_seed_determinism_full_report () =
  let a = contended_kard_report ~seed:3 () in
  let b = contended_kard_report ~seed:3 () in
  check "same seed, same full report" true (a = b)

let test_sim_clock () =
  let c = Sim_clock.create () in
  Sim_clock.advance c 5;
  Sim_clock.advance c 7;
  check_int "advances" 12 (Sim_clock.now c);
  Sim_clock.reset c;
  check_int "resets" 0 (Sim_clock.now c)

let () =
  Alcotest.run "kard_sched"
    [ ( "program",
        [ Alcotest.test_case "of_list" `Quick test_program_of_list;
          Alcotest.test_case "append/concat" `Quick test_program_append_concat;
          Alcotest.test_case "repeat is lazy" `Quick test_program_repeat_lazy;
          Alcotest.test_case "unfold" `Quick test_program_unfold;
          Alcotest.test_case "delay" `Quick test_program_delay;
          Alcotest.test_case "with_setup" `Quick test_program_with_setup ] );
      ( "runnable_set",
        [ Alcotest.test_case "basic" `Quick test_runnable_set_basic;
          Alcotest.test_case "order statistics" `Quick test_runnable_set_order_statistics;
          Alcotest.test_case "grows" `Quick test_runnable_set_grows;
          Alcotest.test_case "oracle cross-check" `Quick test_runnable_set_exhaustive_vs_list ] );
      ( "lock_table",
        [ Alcotest.test_case "acquire/release" `Quick test_lock_acquire_release;
          Alcotest.test_case "fifo wakeup" `Quick test_lock_fifo;
          Alcotest.test_case "errors" `Quick test_lock_errors;
          Alcotest.test_case "stats" `Quick test_lock_stats;
          Alcotest.test_case "held-lock index" `Quick test_lock_held_index;
          Alcotest.test_case "waiter iteration" `Quick test_lock_waiter_iteration ] );
      ( "machine",
        [ Alcotest.test_case "compute/io" `Quick test_machine_compute_io;
          Alcotest.test_case "alloc and access" `Quick test_machine_alloc_and_access;
          Alcotest.test_case "lock stats" `Quick test_machine_lock_cs_stats;
          Alcotest.test_case "finish holding lock" `Quick test_machine_deadlock_detected;
          Alcotest.test_case "blocked thread waits" `Quick test_machine_blocked_thread_waits;
          Alcotest.test_case "determinism" `Quick test_machine_determinism;
          Alcotest.test_case "block op" `Quick test_machine_block_op;
          Alcotest.test_case "stall accounting" `Quick test_machine_stall_accounting;
          Alcotest.test_case "max steps" `Quick test_machine_max_steps;
          Alcotest.test_case "sim clock" `Quick test_sim_clock ] );
      ( "schedule",
        [ Alcotest.test_case "replay is exact" `Quick test_schedule_replay_exact;
          Alcotest.test_case "round robin" `Quick test_schedule_round_robin;
          Alcotest.test_case "short tape fallback" `Quick test_schedule_replay_short_tape;
          Alcotest.test_case "pick unit" `Quick test_schedule_pick_unit;
          Alcotest.test_case "replay full report (contended, faulting)" `Quick
            test_replay_full_report_identical;
          Alcotest.test_case "seeded full-report determinism" `Quick
            test_random_seed_determinism_full_report ] ) ]
