(* Tests for the comparator detectors: vector clocks, the TSan-style
   happens-before detector, and the Eraser lockset detector. *)

module Vc = Kard_baselines.Vector_clock
module Tsan = Kard_baselines.Tsan
module Lockset = Kard_baselines.Lockset
module Machine = Kard_sched.Machine
module Program = Kard_sched.Program
module Op = Kard_sched.Op
module Builder = Kard_workloads.Builder

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Vector clocks} *)

let test_vc_basics () =
  let a = Vc.create ~threads:3 in
  Vc.tick a 0;
  Vc.tick a 0;
  Vc.tick a 1;
  check_int "component 0" 2 (Vc.get a 0);
  check_int "component 1" 1 (Vc.get a 1);
  let b = Vc.copy a in
  Vc.tick b 2;
  check "copy is independent" false (Vc.equal a b);
  check "a <= b" true (Vc.leq a b);
  check "not b <= a" false (Vc.leq b a)

let test_vc_join () =
  let a = Vc.create ~threads:2 in
  let b = Vc.create ~threads:2 in
  Vc.set a 0 5;
  Vc.set b 1 7;
  Vc.join ~into:a b;
  check_int "join keeps max 0" 5 (Vc.get a 0);
  check_int "join takes max 1" 7 (Vc.get a 1)

let vc_leq_partial_order =
  QCheck.Test.make ~name:"leq is reflexive and join is an upper bound" ~count:200
    QCheck.(pair (list_of_size (Gen.return 4) (int_bound 50)) (list_of_size (Gen.return 4) (int_bound 50)))
    (fun (xs, ys) ->
      let of_list l =
        let v = Vc.create ~threads:4 in
        List.iteri (fun i x -> Vc.set v i x) l;
        v
      in
      let a = of_list xs and b = of_list ys in
      let j = Vc.copy a in
      Vc.join ~into:j b;
      Vc.leq a a && Vc.leq a j && Vc.leq b j)

(* {1 Machine-level baseline runs} *)

let run_two_thread ~detector a_ops b_ops =
  let tsan_cell = ref None in
  let lockset_cell = ref None in
  let make_detector =
    match detector with
    | `Tsan -> Tsan.make ~max_threads:4 ~cell:tsan_cell
    | `Lockset -> Lockset.make ~cell:lockset_cell
  in
  let machine = Machine.create ~seed:5 ~allocator:Machine.Native ~make_detector () in
  let base = ref 0 in
  let ready () = !base <> 0 in
  let t0 =
    Program.concat
      [ Program.of_list
          [ Op.Alloc { size = 64; site = 0; on_result = (fun m -> base := m.Kard_alloc.Obj_meta.base) } ];
        Program.repeat 10 (fun _ -> Program.delay (fun () -> Program.of_list (a_ops !base))) ]
  in
  let t1 =
    Program.append (Builder.wait_until ready)
      (Program.repeat 10 (fun _ -> Program.delay (fun () -> Program.of_list (b_ops !base))))
  in
  let (_ : int) = Machine.spawn machine t0 in
  let (_ : int) = Machine.spawn machine t1 in
  let (_ : Machine.report) = Machine.run machine in
  (!tsan_cell, !lockset_cell)

let locked ~lock ~site base = Builder.critical_section ~lock ~site [ Op.Write base ]

let test_tsan_detects_unsynchronized () =
  let tsan, _ =
    run_two_thread ~detector:`Tsan (fun b -> [ Op.Write b ]) (fun b -> [ Op.Write b ])
  in
  let t = Option.get tsan in
  check "race found" true (List.length (Tsan.races t) >= 1);
  check "not ILU (no locks)" true (Tsan.ilu_races t = [])

let test_tsan_lock_synchronizes () =
  let tsan, _ =
    run_two_thread ~detector:`Tsan (locked ~lock:1 ~site:1) (locked ~lock:1 ~site:2)
  in
  check_int "same lock: no race" 0 (List.length (Tsan.races (Option.get tsan)))

let test_tsan_different_locks_race () =
  let tsan, _ =
    run_two_thread ~detector:`Tsan (locked ~lock:1 ~site:1) (locked ~lock:2 ~site:2)
  in
  let t = Option.get tsan in
  check "different locks race" true (List.length (Tsan.races t) >= 1);
  check "classified ILU" true (List.length (Tsan.ilu_races t) >= 1)

let test_tsan_dedupe () =
  let tsan, _ =
    run_two_thread ~detector:`Tsan (fun b -> [ Op.Write b ]) (fun b -> [ Op.Write b ])
  in
  (* 10 rounds of conflict collapse into one record per thread pair. *)
  check "records deduplicated" true (List.length (Tsan.races (Option.get tsan)) <= 2)

let test_lockset_empty_intersection () =
  let _, lockset =
    run_two_thread ~detector:`Lockset (locked ~lock:1 ~site:1) (locked ~lock:2 ~site:2)
  in
  check "warning issued" true (List.length (Lockset.warnings (Option.get lockset)) >= 1)

let test_lockset_common_lock_quiet () =
  let _, lockset =
    run_two_thread ~detector:`Lockset (locked ~lock:1 ~site:1) (locked ~lock:1 ~site:2)
  in
  check_int "no warning" 0 (List.length (Lockset.warnings (Option.get lockset)))

let test_lockset_read_sharing_quiet () =
  let _, lockset =
    run_two_thread ~detector:`Lockset
      (fun b -> Builder.critical_section ~lock:1 ~site:1 [ Op.Read b ])
      (fun b -> Builder.critical_section ~lock:2 ~site:2 [ Op.Read b ])
  in
  check_int "shared reads never warn" 0 (List.length (Lockset.warnings (Option.get lockset)))

let test_lockset_state_machine () =
  let phys = Kard_vm.Phys_mem.create () in
  let aspace = Kard_vm.Address_space.create phys in
  let meta = Kard_alloc.Meta_table.create () in
  let env =
    { Kard_sched.Hooks.hw = Kard_mpk.Mpk_hw.create ();
      meta;
      cost = Kard_mpk.Cost_model.default;
      now = (fun () -> 0);
      trace = None }
  in
  ignore aspace;
  let l = Lockset.create env in
  let hooks = Lockset.hooks l in
  let addr = 0x10000 in
  ignore (hooks.Kard_sched.Hooks.on_write ~tid:0 ~addr);
  check "exclusive after first" true (Lockset.state_of l addr = Lockset.Exclusive 0);
  ignore (hooks.Kard_sched.Hooks.on_read ~tid:1 ~addr);
  check "shared after second thread reads" true (Lockset.state_of l addr = Lockset.Shared);
  ignore (hooks.Kard_sched.Hooks.on_write ~tid:1 ~addr);
  check "shared-modified after write" true (Lockset.state_of l addr = Lockset.Shared_modified)

let () =
  Alcotest.run "kard_baselines"
    [ ( "vector_clock",
        [ Alcotest.test_case "basics" `Quick test_vc_basics;
          Alcotest.test_case "join" `Quick test_vc_join;
          QCheck_alcotest.to_alcotest vc_leq_partial_order ] );
      ( "tsan",
        [ Alcotest.test_case "unsynchronized race" `Quick test_tsan_detects_unsynchronized;
          Alcotest.test_case "lock synchronizes" `Quick test_tsan_lock_synchronizes;
          Alcotest.test_case "different locks race" `Quick test_tsan_different_locks_race;
          Alcotest.test_case "dedupe" `Quick test_tsan_dedupe ] );
      ( "lockset",
        [ Alcotest.test_case "empty intersection warns" `Quick test_lockset_empty_intersection;
          Alcotest.test_case "common lock quiet" `Quick test_lockset_common_lock_quiet;
          Alcotest.test_case "read sharing quiet" `Quick test_lockset_read_sharing_quiet;
          Alcotest.test_case "state machine" `Quick test_lockset_state_machine ] ) ]
