(* The compiled interpreter against its oracle.

   [Machine.create ~interp:`Compiled] (the default) dispatches on int
   tags pulled straight out of flat program segments;
   [~interp:`Thunks] reconstructs option-boxed [Op.t]s through
   [Program.to_thunk] — the pre-compilation consumption path.  The two
   must be observationally identical: same schedule, same step count,
   same simulated cycles, same races, bit-for-bit identical JSON
   reports.  This file pins that equivalence across every Table 3
   workload, every controlled race scenario, and a dynamic
   data-dependent program, then pins the point of the whole exercise:
   the per-step allocation contract (DESIGN.md). *)

module Machine = Kard_sched.Machine
module Program = Kard_sched.Program
module Dense = Kard_sched.Dense
module Op = Kard_sched.Op
module Runner = Kard_harness.Runner
module Json_report = Kard_harness.Json_report
module Registry = Kard_workloads.Registry
module Race_suite = Kard_workloads.Race_suite

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* {1 Oracle: workloads} *)

(* The JSON rendering covers everything observable about a run —
   machine report, detector stats, race records, uniqueness counts —
   so string equality is the strongest portable comparison.  The
   structural check on [report] is kept as a second witness because a
   JSON diff is painful to read when it does fire. *)
let assert_identical name (compiled : Runner.result) (oracle : Runner.result) =
  check (name ^ ": report") true (compiled.Runner.report = oracle.Runner.report);
  check_int (name ^ ": steps") compiled.Runner.report.Machine.steps
    oracle.Runner.report.Machine.steps;
  check_string (name ^ ": json") (Json_report.of_result compiled) (Json_report.of_result oracle)

let detectors = [ Runner.Baseline; Runner.Kard (Kard_harness.Defaults.kard_config ()) ]

let test_workloads_oracle () =
  List.iter
    (fun spec ->
      List.iter
        (fun detector ->
          let run interp = Runner.run ~interp ~scale:0.002 ~seed:42 ~detector spec in
          assert_identical
            (spec.Kard_workloads.Spec.name ^ "/" ^ Runner.detector_name detector)
            (run `Compiled) (run `Thunks))
        detectors)
    Registry.extended

let test_workloads_oracle_reseeded () =
  (* A second seed exercises different schedules through the same
     segments. *)
  let spec = Registry.find "memcached" in
  List.iter
    (fun seed ->
      let run interp =
        Runner.run ~interp ~scale:0.005 ~seed ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ()))
          spec
      in
      assert_identical (Printf.sprintf "memcached seed=%d" seed) (run `Compiled) (run `Thunks))
    [ 1; 7; 1234 ]

let test_race_suite_oracle () =
  List.iter
    (fun scenario ->
      let run interp = Runner.run_scenario ~interp ~seed:42 ~detector:(Runner.Kard scenario.Race_suite.config) scenario in
      let compiled = run `Compiled and oracle = run `Thunks in
      assert_identical scenario.Race_suite.name compiled oracle;
      check_int (scenario.Race_suite.name ^ ": races") (List.length compiled.Runner.kard_races)
        (List.length oracle.Runner.kard_races);
      check (scenario.Race_suite.name ^ ": race records") true
        (compiled.Runner.kard_races = oracle.Runner.kard_races))
    Race_suite.all

(* A program whose shape is decided while it runs: an [Alloc]
   continuation captures the object, [delay] builds the access pattern
   from the allocated base, [dynamic] emits segments until a counter
   runs out, and [wait_until] spins on state written by another
   thread.  Exactly the generator features the compiled cursor must
   not reorder around. *)
let dynamic_program ~flag ~rounds =
  let meta = ref None in
  let remaining = ref rounds in
  Program.concat
    [ Program.of_list
        [ Op.Alloc { size = 64; site = 3; on_result = (fun m -> meta := Some m) } ];
      Program.delay (fun () ->
          match !meta with
          | None -> assert false
          | Some m ->
            let base = m.Kard_alloc.Obj_meta.base in
            Program.of_list [ Op.Lock { lock = 0; site = 3 }; Op.Write base; Op.Unlock { lock = 0 } ]);
      Program.wait_until (fun () -> !flag);
      Program.dynamic (fun () ->
          if !remaining = 0 then None
          else begin
            decr remaining;
            match !meta with
            | None -> assert false
            | Some m ->
              Some
                (Program.of_list
                   [ Op.Lock { lock = 1; site = 4 };
                     Op.Read m.Kard_alloc.Obj_meta.base;
                     Op.Compute 25;
                     Op.Unlock { lock = 1 } ])
          end) ]

let setter_program ~flag =
  Program.concat
    [ Program.of_list [ Op.Compute 400; Op.Io 100 ];
      Program.with_setup (fun () -> flag := true) (Program.of_list [ Op.Yield ]) ]

let run_dynamic interp =
  let cell = ref None in
  let machine =
    Machine.create ~seed:11 ~interp
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Kard_core.Detector.make ~config:Kard_core.Config.default ~cell)
      ()
  in
  let flag = ref false in
  ignore (Machine.spawn machine (dynamic_program ~flag ~rounds:5) : int);
  ignore (Machine.spawn machine (setter_program ~flag) : int);
  let report = Machine.run machine in
  (report, match !cell with Some d -> Kard_core.Detector.races d | None -> [])

let test_dynamic_program_oracle () =
  let report_c, races_c = run_dynamic `Compiled in
  let report_t, races_t = run_dynamic `Thunks in
  check "dynamic: report" true (report_c = report_t);
  check "dynamic: races" true (races_c = races_t);
  check "dynamic: did work" true (report_c.Machine.steps > 10)

(* {1 The allocation contract} *)

(* The hot loop's reason to exist: minor-heap words per executed step,
   measured around a full kard run.  The pre-compilation machine sat
   around 65 w/step on this workload; the compiled loop runs under 15
   even in dev builds.  The bound leaves headroom for GC/runtime
   wobble while still catching any per-step box sneaking back in. *)
let test_allocation_budget () =
  let spec = Registry.find "memcached" in
  let detector = Runner.Kard (Kard_harness.Defaults.kard_config ()) in
  (* Warm once so module initialization doesn't bill the budget. *)
  ignore (Runner.run ~threads:8 ~scale:0.01 ~seed:42 ~detector spec : Runner.result);
  let before = Gc.quick_stat () in
  let result = Runner.run ~threads:8 ~scale:0.01 ~seed:42 ~detector spec in
  let after = Gc.quick_stat () in
  let minor = after.Gc.minor_words -. before.Gc.minor_words in
  let steps = result.Runner.report.Machine.steps in
  let per_step = minor /. float_of_int steps in
  check "steps sane" true (steps > 1_000);
  if per_step > 30.0 then
    Alcotest.failf "allocation contract broken: %.2f minor words/step (budget 30)" per_step

(* {1 Dense} *)

let test_grow_pow2 () =
  check "grows past needed" true (Dense.grow_pow2 4 10 > 10);
  check "at least doubles" true (Dense.grow_pow2 256 257 >= 512);
  check_int "doubling from 4 to >10" 16 (Dense.grow_pow2 4 10);
  let c = Dense.grow_pow2 16 1000 in
  check "big jump covers" true (c > 1000)

let test_bitset () =
  let b = Dense.Bitset.create ~capacity:8 () in
  check "fresh empty" false (Dense.Bitset.mem b 3);
  check_int "fresh count" 0 (Dense.Bitset.count b);
  Dense.Bitset.add b 3;
  Dense.Bitset.add b 3;
  (* idempotent *)
  Dense.Bitset.add b 200;
  (* forces growth *)
  check "mem 3" true (Dense.Bitset.mem b 3);
  check "mem 200" true (Dense.Bitset.mem b 200);
  check "mem 4" false (Dense.Bitset.mem b 4);
  check "mem past capacity" false (Dense.Bitset.mem b 100_000);
  check_int "count" 2 (Dense.Bitset.count b);
  check "negative rejected" true
    (try
       Dense.Bitset.add b (-1);
       false
     with Invalid_argument _ -> true)

let test_int_ring () =
  let r = Dense.Int_ring.create () in
  check_int "empty length" 0 (Dense.Int_ring.length r);
  check "pop empty rejected" true
    (try
       ignore (Dense.Int_ring.pop r : int);
       false
     with Invalid_argument _ -> true);
  (* Push enough to wrap whatever the initial capacity is, popping
     interleaved so head chases tail. *)
  for i = 0 to 99 do
    Dense.Int_ring.push r i
  done;
  for i = 0 to 49 do
    check_int "fifo pop" i (Dense.Int_ring.pop r)
  done;
  for i = 100 to 199 do
    Dense.Int_ring.push r i
  done;
  check_int "length" 150 (Dense.Int_ring.length r);
  check_int "nth 0 is front" 50 (Dense.Int_ring.nth r 0);
  check_int "nth 149" 199 (Dense.Int_ring.nth r 149);
  check "nth out of range" true
    (try
       ignore (Dense.Int_ring.nth r 150 : int);
       false
     with Invalid_argument _ -> true);
  let seen = ref [] in
  Dense.Int_ring.iter (fun x -> seen := x :: !seen) r;
  check_int "iter count" 150 (List.length !seen);
  check_int "iter order front first" 50 (List.nth (List.rev !seen) 0);
  for i = 50 to 199 do
    check_int "drain" i (Dense.Int_ring.pop r)
  done;
  check_int "drained" 0 (Dense.Int_ring.length r)

(* {1 Program cursors} *)

let ops_roundtrip =
  [ Op.Read 0x100;
    Op.Write 0x108;
    Op.Lock { lock = 2; site = 9 };
    Op.Unlock { lock = 2 };
    Op.Compute 75;
    Op.Io 30;
    Op.Yield ]

let test_cursor_tags () =
  let c = Program.cursor (Program.of_list ops_roundtrip) in
  check_int "read tag" Program.tag_read (Program.fetch c);
  check_int "read addr" 0x100 (Program.arg_a c);
  check_int "write tag" Program.tag_write (Program.fetch c);
  check_int "write addr" 0x108 (Program.arg_a c);
  check_int "lock tag" Program.tag_lock (Program.fetch c);
  check_int "lock id" 2 (Program.arg_a c);
  check_int "lock site" 9 (Program.arg_b c);
  check_int "unlock tag" Program.tag_unlock (Program.fetch c);
  check_int "unlock id" 2 (Program.arg_a c);
  check_int "compute tag" Program.tag_compute (Program.fetch c);
  check_int "compute cycles" 75 (Program.arg_a c);
  check_int "io tag" Program.tag_io (Program.fetch c);
  check_int "io cycles" 30 (Program.arg_a c);
  check_int "yield tag" Program.tag_yield (Program.fetch c);
  check_int "halt" Program.tag_halt (Program.fetch c);
  check_int "halt is sticky" Program.tag_halt (Program.fetch c)

let test_cursor_boxed () =
  let got = ref None in
  let p =
    Program.of_list [ Op.Alloc { size = 32; site = 1; on_result = (fun m -> got := Some m) } ]
  in
  let c = Program.cursor p in
  check_int "boxed tag" Program.tag_boxed (Program.fetch c);
  (match Program.boxed_op c with
  | Op.Alloc { size = 32; site = 1; _ } -> ()
  | _ -> Alcotest.fail "wrong boxed payload");
  check_int "halt after boxed" Program.tag_halt (Program.fetch c)

let test_next_op_oracle () =
  (* [next_op] must reconstruct exactly the ops [of_list] consumed. *)
  let c = Program.cursor (Program.of_list ops_roundtrip) in
  let rec drain acc =
    match Program.next_op c with
    | Some op -> drain (op :: acc)
    | None -> List.rev acc
  in
  check "next_op roundtrip" true (drain [] = ops_roundtrip);
  check "to_list roundtrip" true (Program.to_list (Program.of_list ops_roundtrip) = ops_roundtrip)

let test_builder_matches_of_list () =
  let b = Program.Builder.create ~hint:4 () in
  Program.Builder.read b 0x10;
  Program.Builder.write b 0x18;
  Program.Builder.lock b ~lock:1 ~site:5;
  Program.Builder.unlock b ~lock:1;
  Program.Builder.compute b 12;
  Program.Builder.io b 3;
  Program.Builder.yield b;
  let built = Program.to_list (Program.Builder.seal b) in
  let expected =
    [ Op.Read 0x10;
      Op.Write 0x18;
      Op.Lock { lock = 1; site = 5 };
      Op.Unlock { lock = 1 };
      Op.Compute 12;
      Op.Io 3;
      Op.Yield ]
  in
  check "builder = of_list" true (built = expected)

let test_builder_arena_reuse () =
  let b = Program.Builder.create ~hint:2 () in
  Program.Builder.read b 0x10;
  Program.Builder.read b 0x20;
  let p1 = Program.Builder.current b in
  check "cycle 1 contents" true (Program.to_list p1 = [ Op.Read 0x10; Op.Read 0x20 ]);
  Program.Builder.reset b;
  Program.Builder.write b 0x30;
  let p2 = Program.Builder.current b in
  (* [current] aliases the builder's buffers: the same program value
     comes back every cycle (that is what makes the generator loop
     allocation-free), serving whatever was emitted since the last
     reset. *)
  check "same program value across cycles" true (p1 == p2);
  check "cycle 2 contents" true (Program.to_list p2 = [ Op.Write 0x30 ]);
  Program.Builder.reset b;
  let p3 = Program.Builder.current b in
  check "empty cycle" true (Program.to_list p3 = [])

let () =
  Alcotest.run "compiled"
    [ ( "oracle",
        [ Alcotest.test_case "workloads compiled = thunks" `Slow test_workloads_oracle;
          Alcotest.test_case "memcached across seeds" `Slow test_workloads_oracle_reseeded;
          Alcotest.test_case "race suite compiled = thunks" `Quick test_race_suite_oracle;
          Alcotest.test_case "dynamic program" `Quick test_dynamic_program_oracle ] );
      ( "allocation",
        [ Alcotest.test_case "per-step budget" `Slow test_allocation_budget ] );
      ( "dense",
        [ Alcotest.test_case "grow_pow2" `Quick test_grow_pow2;
          Alcotest.test_case "bitset" `Quick test_bitset;
          Alcotest.test_case "int_ring" `Quick test_int_ring ] );
      ( "program",
        [ Alcotest.test_case "cursor tags" `Quick test_cursor_tags;
          Alcotest.test_case "boxed ops" `Quick test_cursor_boxed;
          Alcotest.test_case "next_op oracle" `Quick test_next_op_oracle;
          Alcotest.test_case "builder seal" `Quick test_builder_matches_of_list;
          Alcotest.test_case "builder arena reuse" `Quick test_builder_arena_reuse ] ) ]
