(* Tests for the open-loop serving stack: arrival-process determinism,
   the serve sweep's cross-jobs reproducibility, and the
   goodput-under-SLO computation. *)

module Openloop = Kard_workloads.Openloop
module Experiments = Kard_harness.Experiments
module Runner = Kard_harness.Runner
module Json = Kard_harness.Json_report
module Window = Kard_obs.Window
module Snapshot = Kard_obs.Snapshot

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* {1 Arrival processes} *)

let test_arrivals_deterministic () =
  let a = Openloop.arrivals ~model:Openloop.Poisson ~seed:42 ~rate:12.0 ~count:500 in
  let b = Openloop.arrivals ~model:Openloop.Poisson ~seed:42 ~rate:12.0 ~count:500 in
  check "pure function of (seed, rate)" true (a = b);
  (* A longer timetable at the same (seed, rate) extends, not reshuffles:
     saturation sweeps replay identical prefixes. *)
  let longer = Openloop.arrivals ~model:Openloop.Poisson ~seed:42 ~rate:12.0 ~count:800 in
  check "prefix stable under count" true (Array.sub longer 0 500 = a);
  let other_seed = Openloop.arrivals ~model:Openloop.Poisson ~seed:43 ~rate:12.0 ~count:500 in
  check "seed matters" false (a = other_seed);
  let other_rate = Openloop.arrivals ~model:Openloop.Poisson ~seed:42 ~rate:24.0 ~count:500 in
  check "rate matters" false (a = other_rate);
  let bursty =
    Openloop.arrivals ~model:Openloop.default_bursty ~seed:42 ~rate:12.0 ~count:500
  in
  check "model matters" false (a = bursty);
  check "bursty deterministic too" true
    (bursty = Openloop.arrivals ~model:Openloop.default_bursty ~seed:42 ~rate:12.0 ~count:500)

let test_arrivals_shape () =
  let a = Openloop.arrivals ~model:Openloop.Poisson ~seed:7 ~rate:20.0 ~count:2_000 in
  check_int "count honoured" 2_000 (Array.length a);
  let monotone = ref true in
  Array.iteri (fun i t -> if i > 0 && t < a.(i - 1) then monotone := false) a;
  check "non-decreasing" true !monotone;
  (* 2000 arrivals at 20 r/Mcy should span roughly 100 Mcy; the seeded
     draw lands well within 3x either way. *)
  let span = float_of_int a.(Array.length a - 1) in
  check "span near count/rate" true (span > 33e6 && span < 300e6);
  check "zero count fine" true (Openloop.arrivals ~model:Openloop.Poisson ~seed:1 ~rate:1.0 ~count:0 = [||]);
  let rejects f = try ignore (f () : int array); false with Invalid_argument _ -> true in
  check "rate 0 rejected" true
    (rejects (fun () -> Openloop.arrivals ~model:Openloop.Poisson ~seed:1 ~rate:0.0 ~count:1));
  check "negative count rejected" true
    (rejects (fun () -> Openloop.arrivals ~model:Openloop.Poisson ~seed:1 ~rate:1.0 ~count:(-1)))

let test_spec_names () =
  check_string "nginx exemplar" "serve-nginx:poisson:r12" Openloop.nginx.Kard_workloads.Spec.name;
  check_string "memcached exemplar" "serve-memcached:poisson:r24"
    Openloop.memcached.Kard_workloads.Spec.name;
  check "registered in the extended registry" true
    (List.exists
       (fun s -> s.Kard_workloads.Spec.name = "serve-nginx:poisson:r12")
       Kard_workloads.Registry.extended)

(* {1 Goodput under SLO} *)

let zero_window =
  { Window.w_start = 0; count = 0; max = 0; mean = 0.; p50 = 0; p95 = 0; p99 = 0; p999 = 0 }

let row detector rate p99 =
  { Experiments.sv_detector = detector;
    sv_rate = rate;
    sv_requests = 100;
    sv_cycles = 1_000_000;
    sv_achieved = rate;
    sv_latency = { zero_window with Window.count = 100; p99 };
    sv_snapshot = Snapshot.empty }

let test_goodput () =
  let rows =
    [ row "none" 8. 50_000; row "none" 16. 90_000; row "none" 32. 150_000;
      row "kard" 8. 80_000; row "kard" 16. 250_000; row "kard" 32. 400_000 ]
  in
  let g = Experiments.serve_goodput ~slo:200_000 rows in
  check "detector order is first appearance" true (List.map fst g = [ "none"; "kard" ]);
  check "none sustains the top rate" true (List.assoc "none" g = 32.);
  check "kard capped by its p99 knee" true (List.assoc "kard" g = 8.);
  (* Every rate missing the SLO yields 0, not an exception. *)
  let g2 = Experiments.serve_goodput ~slo:10_000 rows in
  check "all-miss is zero" true (List.assoc "kard" g2 = 0.);
  (* Rows with no served requests never count as meeting the SLO, even
     though their zeroed p99 is trivially under budget. *)
  let empty_row =
    { (row "none" 64. 0) with Experiments.sv_requests = 0; sv_latency = zero_window }
  in
  let g3 = Experiments.serve_goodput ~slo:200_000 (rows @ [ empty_row ]) in
  check "empty rows excluded" true (List.assoc "none" g3 = 32.)

(* {1 Sweep determinism across --jobs} *)

let sweep ~jobs =
  Experiments.serve ~jobs
    ~detectors:[ ("none", Runner.Baseline); ("kard", Runner.Kard (Kard_harness.Defaults.kard_config ())) ]
    ~rates:[ 10.0; 28.0 ] ~scale:0.01 ~seed:42 ()

let test_sweep_jobs_identical () =
  let serial = sweep ~jobs:1 in
  let parallel = sweep ~jobs:4 in
  (* The whole emitted benchmark file, byte for byte. *)
  let render s = Json.of_serve_sweep ~threads:4 ~scale:0.01 ~seed:42 s in
  check "JSON byte-identical across --jobs" true
    (String.equal (render serial) (render parallel));
  (* And the windowed-histogram contents specifically: every window row
     of every metric of every sweep point. *)
  List.iter2
    (fun (a : Experiments.serve_row) (b : Experiments.serve_row) ->
      check "windowed histograms identical" true
        (a.Experiments.sv_snapshot.Snapshot.windows = b.Experiments.sv_snapshot.Snapshot.windows))
    serial.Experiments.ss_rows parallel.Experiments.ss_rows

let test_sweep_shape () =
  let s = sweep ~jobs:2 in
  check_int "detectors x rates rows" 4 (List.length s.Experiments.ss_rows);
  List.iter
    (fun (r : Experiments.serve_row) ->
      check "every arrival served" true (r.Experiments.sv_requests > 0);
      check_int "latency samples = requests" r.Experiments.sv_requests
        r.Experiments.sv_latency.Window.count;
      check "achieved rate positive" true (r.Experiments.sv_achieved > 0.))
    s.Experiments.ss_rows;
  (* Detector-major, offered-rate-minor, in argument order. *)
  check "row order" true
    (List.map (fun r -> (r.Experiments.sv_detector, r.Experiments.sv_rate)) s.Experiments.ss_rows
     = [ ("none", 10.0); ("none", 28.0); ("kard", 10.0); ("kard", 28.0) ]);
  check "goodput covers both detectors" true
    (List.map fst s.Experiments.ss_goodput = [ "none"; "kard" ])

let () =
  Alcotest.run "kard_serve"
    [ ( "arrivals",
        [ Alcotest.test_case "deterministic" `Quick test_arrivals_deterministic;
          Alcotest.test_case "shape" `Quick test_arrivals_shape;
          Alcotest.test_case "spec names" `Quick test_spec_names ] );
      ( "goodput",
        [ Alcotest.test_case "under SLO" `Quick test_goodput ] );
      ( "sweep",
        [ Alcotest.test_case "jobs-identical" `Slow test_sweep_jobs_identical;
          Alcotest.test_case "shape" `Slow test_sweep_shape ] ) ]
