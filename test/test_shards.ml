(* The sharded machine's determinism contract (DESIGN.md §10): reports,
   JSON and Chrome traces must be byte-identical at any shard count,
   and the burst engine's deferred accounting must equal charging every
   access in schedule order.  Unit tests cover the partition and the
   burst queues directly; the identity tests diff whole runs. *)

module Page = Kard_mpk.Page
module Pkey = Kard_mpk.Pkey
module Mpk_hw = Kard_mpk.Mpk_hw
module Burst = Kard_sched.Burst
module Machine = Kard_sched.Machine
module Schedule = Kard_sched.Schedule
module Race_suite = Kard_workloads.Race_suite
module Contended = Kard_workloads.Contended
module Spec = Kard_workloads.Spec
module Runner = Kard_harness.Runner
module Json_report = Kard_harness.Json_report
module Experiments = Kard_harness.Experiments
module Pool = Kard_harness.Pool
module Defaults = Kard_harness.Defaults

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Shard partition} *)

let test_slice_partition () =
  List.iter
    (fun shards ->
      let hw = Mpk_hw.create ~shards () in
      check_int "shard count recorded" shards (Mpk_hw.shards hw);
      let seen = Array.make shards false in
      for vpage = 0 to 4095 do
        let s = Mpk_hw.slice_of_vpage hw vpage in
        check "slice in range" true (s >= 0 && s < shards);
        check_int "routing is deterministic" s (Mpk_hw.slice_of_vpage hw vpage);
        seen.(s) <- true
      done;
      check "every slice owns at least one TLB set" true (Array.for_all Fun.id seen))
    [ 1; 2; 3; 4; 8 ]

let test_slice_single_shard () =
  let hw = Mpk_hw.create () in
  for vpage = 0 to 255 do
    check_int "one shard routes everything to slice 0" 0 (Mpk_hw.slice_of_vpage hw vpage)
  done

(* {1 Burst queues} *)

let test_burst_commit_order () =
  let hw = Mpk_hw.create ~shards:2 () in
  for tid = 0 to 7 do
    Mpk_hw.register_thread hw tid
  done;
  let b = Burst.create ~shards:2 ~threads:8 ~hw () in
  check "clean at creation" false (Burst.dirty b);
  check_int "nothing pending at creation" 0 (Burst.pending b);
  Burst.add_inline b ~tid:5 10;
  Burst.add_inline b ~tid:2 7;
  Burst.add_inline b ~tid:5 3;
  check "dirty after banking" true (Burst.dirty b);
  check_int "inline cycles queue no drain work" 0 (Burst.pending b);
  let order = ref [] in
  Burst.flush b ~commit:(fun tid cycles -> order := (tid, cycles) :: !order);
  check "one commit per thread, first-touch order" true
    (List.rev !order = [ (5, 13); (2, 7) ]);
  check "clean after flush" false (Burst.dirty b);
  Burst.flush b ~commit:(fun _ _ -> Alcotest.fail "flush of clean queues must not commit");
  Burst.stop b

(* The burst split — exact enqueue-time verdict, drain-time TLB work,
   one cycle sum per thread — must account exactly like running
   [try_access] per access in schedule order. *)
let test_burst_drain_matches_sequential () =
  let shards = 3 in
  let mk () =
    let hw = Mpk_hw.create ~shards () in
    for tid = 0 to 3 do
      Mpk_hw.register_thread hw tid
    done;
    ignore (Mpk_hw.pkey_mprotect hw ~base:0 ~len:(256 * Page.size) (Pkey.of_int 1));
    hw
  in
  let accesses =
    List.init 400 (fun i -> (i mod 4, Page.base_of_vpage (i * 37 mod 512)))
  in
  let seq_hw = mk () in
  let seq = Array.make 4 0 in
  List.iter
    (fun (tid, addr) ->
      let cycles = Mpk_hw.try_access seq_hw ~tid ~addr ~access:`Read ~ip:0 ~time:0 in
      check "sequential access granted" true (cycles >= 0);
      seq.(tid) <- seq.(tid) + cycles)
    accesses;
  let burst_hw = mk () in
  let b = Burst.create ~shards ~threads:4 ~hw:burst_hw () in
  List.iter
    (fun (tid, addr) ->
      let vpage = Page.vpage_of_addr addr in
      check "enqueue-time verdict granted" true
        (Mpk_hw.access_granted burst_hw ~tid ~vpage ~access:`Read);
      Burst.enqueue b ~slice:(Mpk_hw.slice_of_vpage burst_hw vpage) ~tid ~vpage)
    accesses;
  check_int "pending counts queued accesses" (List.length accesses) (Burst.pending b);
  let got = Array.make 4 0 in
  Burst.flush b ~commit:(fun tid cycles -> got.(tid) <- got.(tid) + cycles);
  Burst.stop b;
  Array.iteri (fun tid cycles -> check_int "per-thread cycle sums match" cycles got.(tid)) seq;
  check "dTLB accounting matches the sequential walk" true
    (Mpk_hw.stats seq_hw = Mpk_hw.stats burst_hw)

let test_burst_workers_never_affect_results () =
  let run workers =
    let hw = Mpk_hw.create ~shards:4 () in
    for tid = 0 to 3 do
      Mpk_hw.register_thread hw tid
    done;
    let b = Burst.create ~workers ~shards:4 ~threads:4 ~hw () in
    for i = 0 to 199 do
      let tid = i mod 4 and vpage = i * 13 mod 256 in
      check "verdict granted" true (Mpk_hw.access_granted hw ~tid ~vpage ~access:`Write);
      Burst.enqueue b ~slice:(Mpk_hw.slice_of_vpage hw vpage) ~tid ~vpage
    done;
    Burst.add_inline b ~tid:1 5;
    let live = Burst.workers b in
    let commits = ref [] in
    Burst.flush b ~commit:(fun tid cycles -> commits := (tid, cycles) :: !commits);
    Burst.stop b;
    (live, List.rev !commits, Mpk_hw.stats hw)
  in
  let w0, commits0, stats0 = run 0 in
  let w2, commits2, stats2 = run 2 in
  check_int "workers 0 drains on the coordinator" 0 w0;
  check_int "a forced crew spawns" 2 w2;
  check "commit sequence independent of workers" true (commits0 = commits2);
  check "hardware accounting independent of workers" true (stats0 = stats2)

let test_burst_stop_idempotent () =
  let hw = Mpk_hw.create ~shards:2 () in
  Mpk_hw.register_thread hw 0;
  let b = Burst.create ~workers:1 ~shards:2 ~threads:1 ~hw () in
  check_int "crew of one" 1 (Burst.workers b);
  Burst.stop b;
  check_int "stop joins the crew" 0 (Burst.workers b);
  Burst.stop b;
  (* A flush after stop drains inline. *)
  Burst.add_inline b ~tid:0 4;
  let got = ref 0 in
  Burst.flush b ~commit:(fun _ cycles -> got := !got + cycles);
  check_int "post-stop flush drains inline" 4 !got

(* {1 Shards 1-vs-N identity} *)

(* Every controlled race scenario, full result and JSON, at a
   non-power-of-two shard count (so slices are uneven). *)
let test_race_suite_identity () =
  List.iter
    (fun sc ->
      let run shards =
        Runner.run_scenario ~shards ~detector:(Runner.Kard sc.Race_suite.config) sc
      in
      let r1 = run 1 and r3 = run 3 in
      check (sc.Race_suite.name ^ ": result identical at 1 vs 3 shards") true (r1 = r3);
      check (sc.Race_suite.name ^ ": JSON identical") true
        (Json_report.of_result r1 = Json_report.of_result r3))
    Race_suite.all

(* Impure access hooks (TSan, Eraser) disqualify the burst engine; the
   direct engine with sliced TLBs must still be byte-identical. *)
let test_ineligible_hooks_identity () =
  List.iter
    (fun (name, detector) ->
      let run shards =
        Runner.run_scenario ~shards ~detector Race_suite.nolock_nolock
      in
      check (name ^ " identical at 1 vs 3 shards") true (run 1 = run 3))
    [ ("tsan", Runner.Tsan); ("lockset", Runner.Lockset) ]

(* The thunk interpreter is burst-ineligible too — and both engines
   must agree with each other. *)
let test_thunks_identity () =
  let sc = Race_suite.ilu_lock_nolock in
  let run ~interp shards =
    Runner.run_scenario ~interp ~shards ~detector:(Runner.Kard sc.Race_suite.config) sc
  in
  let t1 = run ~interp:`Thunks 1 in
  check "thunks identical at 1 vs 3 shards" true (t1 = run ~interp:`Thunks 3);
  check "thunks agree with sharded compiled" true (t1 = run ~interp:`Compiled 3)

(* {1 Convoy: the shard benchmark's subject} *)

let convoy_threads = 16
let convoy_scale = 0.02

let run_convoy ?schedule ?(shards = 1) ?shard_workers () =
  let cell = ref None in
  let machine =
    Machine.create ?schedule ~seed:7 ~shards ?shard_workers
      ~allocator:(Machine.Unique_page { granule = 32; recycle_virtual_pages = false })
      ~make_detector:(Kard_core.Detector.make ~config:Kard_core.Config.default ~cell)
      ()
  in
  Contended.convoy.Spec.build ~threads:convoy_threads ~scale:convoy_scale ~seed:7 machine;
  let report = Machine.run machine in
  (report, Kard_core.Detector.races (Option.get !cell))

let test_convoy_identity () =
  let base = run_convoy () in
  List.iter
    (fun shards ->
      check
        (Printf.sprintf "convoy identical at 1 vs %d shards" shards)
        true
        (base = run_convoy ~shards ()))
    [ 2; 4 ]

let test_convoy_forced_workers () =
  (* Pinning the drain crew (even above the host's core count) must
     not change a single report field. *)
  check "forced 3-worker crew identical" true
    (run_convoy () = run_convoy ~shards:4 ~shard_workers:3 ());
  check "inline drain (0 workers) identical" true
    (run_convoy () = run_convoy ~shards:4 ~shard_workers:0 ())

let test_convoy_replay_identity () =
  (* Contended replay: record the schedule at 1 shard, replay the tape
     on a 4-shard machine — same picks, same report, same races. *)
  let report, races = run_convoy () in
  let tape = report.Machine.schedule_trace in
  check "convoy recorded a schedule" true (Array.length tape > 0);
  let report4, races4 = run_convoy ~schedule:(Schedule.Replay tape) ~shards:4 () in
  check "replayed report identical" true (report = report4);
  check "replayed races identical" true (races = races4)

(* Chrome traces from a sharded run must serialize to the same bytes.
   Per-step events stay off, so the burst engine remains eligible. *)
let test_convoy_trace_identity () =
  let run shards =
    let trace = Kard_obs.Trace.create () in
    let r =
      Runner.run ~trace ~shards ~threads:convoy_threads ~scale:convoy_scale
        ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ())) Contended.convoy
    in
    (r, Kard_obs.Chrome_trace.to_json ~t:(Option.get r.Runner.trace))
  in
  let r1, json1 = run 1 and r4, json4 = run 4 in
  check "traced reports identical" true (r1.Runner.report = r4.Runner.report);
  check "traced races identical" true (r1.Runner.kard_races = r4.Runner.kard_races);
  check "Chrome trace bytes identical" true (json1 = json4)

(* {1 Serve-sweep point} *)

let test_serve_point_identity () =
  let sweep shards =
    Experiments.serve ~jobs:1
      ~detectors:[ ("kard", Runner.Kard (Kard_harness.Defaults.kard_config ())) ]
      ~rates:[ 10.0 ] ~threads:4 ~scale:0.01 ~shards ()
  in
  let s1 = sweep 1 and s2 = sweep 2 in
  check "serve sweep JSON identical at 1 vs 2 shards" true
    (Json_report.of_serve_sweep ~threads:4 ~scale:0.01 ~seed:Defaults.seed s1
    = Json_report.of_serve_sweep ~threads:4 ~scale:0.01 ~seed:Defaults.seed s2)

(* {1 Satellites: GC aggregation and the shard-count default} *)

let test_map_gc_aggregates () =
  let xs = List.init 32 Fun.id in
  (* Small boxed values so the allocation lands in the minor heap of
     whichever domain runs the item. *)
  let f x = List.fold_left (fun acc (a, b) -> acc + a + b) 0 (List.init 64 (fun i -> (x, i))) in
  let plain = Pool.map ~jobs:2 f xs in
  let via_gc, gc = Pool.map_gc ~jobs:2 f xs in
  check "map_gc returns the same results" true (plain = via_gc);
  check "worker-domain allocation is counted" true (gc.Pool.minor_words > 0.);
  check "promoted words are non-negative" true (gc.Pool.promoted_words >= 0.)

let test_defaults_shards_env () =
  let with_env value f =
    Unix.putenv Defaults.shards_env value;
    Fun.protect ~finally:(fun () -> Unix.putenv Defaults.shards_env "") f
  in
  with_env "3" (fun () -> check_int "KARD_SHARDS=3" 3 (Defaults.shards ()));
  with_env " 4 " (fun () -> check_int "whitespace tolerated" 4 (Defaults.shards ()));
  with_env "0" (fun () -> check_int "zero falls back to 1" 1 (Defaults.shards ()));
  with_env "-2" (fun () -> check_int "negative falls back to 1" 1 (Defaults.shards ()));
  with_env "lots" (fun () -> check_int "junk falls back to 1" 1 (Defaults.shards ()));
  check_int "unset means 1" 1 (Defaults.shards ())

let () =
  Alcotest.run "shards"
    [
      ( "partition",
        [
          Alcotest.test_case "slice routing" `Quick test_slice_partition;
          Alcotest.test_case "single shard" `Quick test_slice_single_shard;
        ] );
      ( "burst",
        [
          Alcotest.test_case "commit order" `Quick test_burst_commit_order;
          Alcotest.test_case "drain matches sequential" `Quick
            test_burst_drain_matches_sequential;
          Alcotest.test_case "workers never affect results" `Quick
            test_burst_workers_never_affect_results;
          Alcotest.test_case "stop is idempotent" `Quick test_burst_stop_idempotent;
        ] );
      ( "identity",
        [
          Alcotest.test_case "race suite 1 vs 3" `Quick test_race_suite_identity;
          Alcotest.test_case "ineligible hooks 1 vs 3" `Quick
            test_ineligible_hooks_identity;
          Alcotest.test_case "thunk interpreter 1 vs 3" `Quick test_thunks_identity;
          Alcotest.test_case "convoy 1 vs N" `Quick test_convoy_identity;
          Alcotest.test_case "convoy forced workers" `Quick test_convoy_forced_workers;
          Alcotest.test_case "convoy replay on 4 shards" `Quick
            test_convoy_replay_identity;
          Alcotest.test_case "convoy Chrome trace bytes" `Quick
            test_convoy_trace_identity;
          Alcotest.test_case "serve point 1 vs 2" `Quick test_serve_point_identity;
        ] );
      ( "satellites",
        [
          Alcotest.test_case "map_gc aggregation" `Quick test_map_gc_aggregates;
          Alcotest.test_case "KARD_SHARDS parsing" `Quick test_defaults_shards_env;
        ] );
    ]
