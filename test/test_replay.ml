(* The record/replay subsystem: codec round-trips and strict
   rejection, target resolution, record->replay byte-identity across
   shard/vkey/sampling settings, cross-detector replay, fidelity
   tamper detection, the bytes-per-step budget, and the checked-in
   fuzz-log regression fixture. *)

module Log = Kard_replay.Log
module Record = Kard_harness.Record
module Runner = Kard_harness.Runner
module Defaults = Kard_harness.Defaults
module Json_report = Kard_harness.Json_report
module Race_suite = Kard_workloads.Race_suite
module Registry = Kard_workloads.Registry
module Config = Kard_core.Config
module Machine = Kard_sched.Machine
module Campaign = Kard_fuzz.Campaign
module Prog = Kard_fuzz.Prog

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* {1 Codec: random logs} *)

(* Random but well-formed logs: picks straddle the one-byte/extended
   boundary at 240 threads, anchors are monotone in both coordinates
   (the encoder's invariant), seeds may be negative (zigzag), and the
   optional config exercises every fingerprint field. *)
let gen_log st =
  let detector =
    List.nth [ "kard"; "baseline"; "alloc"; "tsan"; "lockset" ] (Random.State.int st 5)
  in
  let config =
    if Random.State.bool st then
      Some
        { (Defaults.kard_config ()) with
          Config.data_keys = 1 + Random.State.int st 15;
          vkeys = Random.State.int st 256;
          sampling = float_of_int (Random.State.int st 11) /. 10.;
          sampling_epoch = 1 + Random.State.int st 1_000_000;
          sampling_seed = Random.State.int st 10_000 - 5_000 }
    else None
  in
  let header =
    { Log.detector;
      target = Printf.sprintf "spec:w%d" (Random.State.int st 50);
      threads = 1 + Random.State.int st 600;
      scale = Random.State.float st 1.0;
      seed = Random.State.int st 2_000_000 - 1_000_000;
      shards = 1 + Random.State.int st 8;
      config }
  in
  let n = Random.State.int st 300 in
  let picks = ref 0 and anchor_clock = ref 0 in
  let events =
    List.init n (fun _ ->
        match Random.State.int st 10 with
        | 0 | 1 ->
          Log.Grant { lock = Random.State.int st 1000; tid = Random.State.int st 600 }
        | 2 ->
          anchor_clock := !anchor_clock + Random.State.int st 10_000;
          Log.Anchor { picks = !picks; clock = !anchor_clock }
        | _ ->
          incr picks;
          Log.Pick (Random.State.int st 600))
  in
  { Log.header; events }

let print_log (l : Log.t) =
  Format.asprintf "%a; %d events (%d picks, %d grants)" Log.pp_header l.Log.header
    (List.length l.Log.events) (Log.pick_count l) (Log.grant_count l)

let codec_roundtrip =
  QCheck.Test.make ~name:"decode (encode log) = log" ~count:300
    (QCheck.make ~print:print_log gen_log)
    (fun log -> Log.decode (Log.encode log) = log)

(* {1 Codec: strict rejection} *)

let minimal_log =
  { Log.header =
      { Log.detector = "baseline"; target = "spec:x"; threads = 1; scale = 1.0;
        seed = 0; shards = 1; config = None };
    events = [] }

let expect_error name s pred =
  match Log.decode s with
  | (_ : Log.t) -> Alcotest.failf "%s: decoded instead of raising" name
  | exception Log.Error e ->
    if not (pred e) then Alcotest.failf "%s: wrong error %s" name (Log.error_to_string e)

let test_bad_magic () =
  let body = Log.encode minimal_log in
  let swapped = "XRDL" ^ String.sub body 4 (String.length body - 4) in
  expect_error "empty" "" (function Log.Bad_magic -> true | _ -> false);
  expect_error "short" "KR" (function Log.Bad_magic -> true | _ -> false);
  expect_error "wrong magic" swapped (function Log.Bad_magic -> true | _ -> false)

let test_version_mismatch () =
  (* The version varint sits right after the 4-byte magic. *)
  let b = Bytes.of_string (Log.encode minimal_log) in
  Bytes.set b 4 (Char.chr (Log.version + 1));
  expect_error "future version" (Bytes.to_string b)
    (function Log.Version_mismatch v -> v = Log.version + 1 | _ -> false)

let test_truncation_rejected () =
  (* Every strict prefix of a valid log must raise: the end marker,
     the count trailer and the exact-length check leave no byte
     optional. *)
  let log = gen_log (Random.State.make [| 2026; 8; 9 |]) in
  let s = Log.encode log in
  for k = 0 to String.length s - 1 do
    match Log.decode (String.sub s 0 k) with
    | (_ : Log.t) -> Alcotest.failf "prefix of %d/%d bytes decoded" k (String.length s)
    | exception Log.Error _ -> ()
  done

let test_trailing_bytes_rejected () =
  expect_error "trailing byte" (Log.encode minimal_log ^ "\x00")
    (function Log.Corrupt _ -> true | _ -> false)

let test_non_canonical_pick_rejected () =
  (* A tid below 240 spelled with the extended tag: decodable in a
     lax reader, but two spellings of one schedule would break
     byte-identity of re-encoded logs. *)
  let s = Log.encode minimal_log in
  let cut = String.length s - 3 (* end tag + two zero-count trailer bytes *) in
  let doctored = String.sub s 0 cut ^ "\xF0\x05" ^ String.sub s cut 3 in
  expect_error "non-canonical extended pick" doctored
    (function Log.Corrupt _ -> true | _ -> false)

(* {1 Target resolution} *)

let test_find_subject () =
  (match Record.find_subject "spec:memcached" with
  | Ok (Record.Spec s) -> check "spec: prefix" true (s.Kard_workloads.Spec.name = "memcached")
  | _ -> Alcotest.fail "spec:memcached did not resolve");
  (match Record.find_subject "memcached" with
  | Ok (Record.Spec s) -> check "bare workload name" true (s.Kard_workloads.Spec.name = "memcached")
  | _ -> Alcotest.fail "bare memcached did not resolve");
  (match Record.find_subject "scenario:ilu-lock-lock" with
  | Ok (Record.Scenario s) -> check "scenario: prefix" true (s.Race_suite.name = "ilu-lock-lock")
  | _ -> Alcotest.fail "scenario:ilu-lock-lock did not resolve");
  (match Record.find_subject "no-such-workload" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "nonsense target resolved")

(* {1 Record -> replay identity} *)

(* Every controlled race scenario: recording costs nothing (the
   result equals an unrecorded run, structurally), and replaying the
   wire-round-tripped log reproduces the result and the JSON report
   byte-for-byte with the tape fully consumed. *)
let test_race_suite_roundtrip () =
  List.iter
    (fun (s : Race_suite.t) ->
      let detector = Runner.Kard s.Race_suite.config in
      let plain = Runner.run_scenario ~detector s in
      let recorded, log = Record.record ~detector (Record.Scenario s) in
      check (s.Race_suite.name ^ ": recording is free") true (recorded = plain);
      let log = Log.decode (Log.encode log) in
      match Record.replay log with
      | Error e -> Alcotest.failf "%s: replay failed: %s" s.Race_suite.name e
      | Ok (replayed, fidelity) ->
        check (s.Race_suite.name ^ ": tape consumed") true (fidelity = Ok ());
        check (s.Race_suite.name ^ ": results identical") true (replayed = plain);
        check (s.Race_suite.name ^ ": JSON identical") true
          (Json_report.of_result replayed = Json_report.of_result plain))
    Race_suite.all

(* The key-pressure workload across the settings matrix: two shard
   counts (recorded at one, replayed at the other), two vkey pool
   sizes and two sampling rates.  Each cell must replay to the
   identical result and JSON report. *)
let test_spec_settings_matrix () =
  let spec = Registry.find "keys-10k" in
  let base = Defaults.kard_config () in
  List.iter
    (fun (rec_shards, rep_shards, vkeys, sampling) ->
      let name = Printf.sprintf "shards %d->%d vkeys %d sampling %g" rec_shards rep_shards vkeys sampling in
      let config = { base with Config.vkeys; sampling; sampling_epoch = 100_000 } in
      let detector = Runner.Kard config in
      let r, log =
        Record.record ~scale:0.01 ~shards:rec_shards ~detector (Record.Spec spec)
      in
      match Record.replay ~shards:rep_shards (Log.decode (Log.encode log)) with
      | Error e -> Alcotest.failf "%s: replay failed: %s" name e
      | Ok (replayed, fidelity) ->
        check (name ^ ": tape consumed") true (fidelity = Ok ());
        check (name ^ ": results identical") true (replayed = r);
        check (name ^ ": JSON identical") true
          (Json_report.of_result replayed = Json_report.of_result r))
    [ (1, 2, 0, 1.0); (2, 1, 64, 1.0); (1, 2, 64, 0.5); (2, 1, 0, 0.5) ]

(* Zero simulated cost on a workload spec, and the wire budget from
   DESIGN.md section 13: one byte per pick below 240 threads, at most
   7 bytes per grant, an anchor every 64 grants, and a small header. *)
let test_spec_zero_cost_and_budget () =
  let spec = Registry.find "keys-10k" in
  let detector = Runner.Kard (Defaults.kard_config ()) in
  let plain = Runner.run ~scale:0.01 ~detector spec in
  let recorded, log = Record.record ~scale:0.01 ~detector (Record.Spec spec) in
  check "recorded result = plain result" true (recorded = plain);
  let bytes = String.length (Log.encode log) in
  let picks = Log.pick_count log and grants = Log.grant_count log in
  check "log is non-trivial" true (picks > 1000 && grants > 0);
  check_int "one step, one pick" plain.Runner.report.Machine.steps picks;
  check "within the documented budget" true
    (bytes <= 300 + picks + (7 * grants) + (21 * ((grants / 64) + 1)));
  check "under two bytes per step" true
    (float_of_int bytes /. float_of_int picks < 2.0)

(* Chrome-trace bytes are part of the identity contract. *)
let test_trace_identity () =
  let s = Race_suite.find "ilu-lock-lock" in
  let detector = Runner.Kard s.Race_suite.config in
  let t1 = Kard_obs.Trace.create () in
  let r1, log = Record.record ~trace:t1 ~detector (Record.Scenario s) in
  let t2 = Kard_obs.Trace.create () in
  match Record.replay ~trace:t2 log with
  | Error e -> Alcotest.failf "traced replay failed: %s" e
  | Ok (r2, fidelity) ->
    check "tape consumed" true (fidelity = Ok ());
    check "reports identical" true (r1.Runner.report = r2.Runner.report);
    check "races identical" true (r1.Runner.kard_races = r2.Runner.kard_races);
    check "Chrome trace bytes identical" true
      (Kard_obs.Chrome_trace.to_json ~t:(Option.get r1.Runner.trace)
      = Kard_obs.Chrome_trace.to_json ~t:(Option.get r2.Runner.trace))

(* {1 Cross-detector replay} *)

(* The headline workflow: record under cheap sampling (which misses
   the planted ILU race), replay the very same schedule under the
   full detector and under both oracles — each finds exactly what it
   would have found live. *)
let test_cross_detector () =
  let s = Race_suite.find "ilu-lock-lock" in
  let sampled =
    { s.Race_suite.config with Config.sampling = 0.25; sampling_epoch = 100_000 }
  in
  let r_sampled, log =
    Record.record ~detector:(Runner.Kard sampled) ~override_config:sampled
      (Record.Scenario s)
  in
  check_int "sampling hid the planted race at record time" 0
    (List.length r_sampled.Runner.kard_ilu_races);
  let replay_with name detector count_of expect =
    match Record.replay ~detector log with
    | Error e -> Alcotest.failf "%s replay failed: %s" name e
    | Ok (r, fidelity) ->
      check (name ^ ": tape consumed") true (fidelity = Ok ());
      let n = count_of r in
      if not (Race_suite.check expect n) then
        Alcotest.failf "%s found %d races, expected %a" name n Race_suite.pp_expectation expect
  in
  replay_with "full kard" (Runner.Kard s.Race_suite.config)
    (fun r -> List.length r.Runner.kard_ilu_races)
    s.Race_suite.expect_kard_ilu;
  replay_with "tsan" Runner.Tsan
    (fun r -> List.length r.Runner.tsan_races)
    s.Race_suite.expect_tsan;
  replay_with "lockset" Runner.Lockset
    (fun r -> List.length r.Runner.lockset_warnings)
    s.Race_suite.expect_lockset

(* {1 Fidelity checking} *)

let record_scenario name =
  let s = Race_suite.find name in
  Record.record ~detector:(Runner.Kard s.Race_suite.config) (Record.Scenario s)

let test_tampered_grant_detected () =
  let _, log = record_scenario "ilu-lock-lock" in
  let tampered = ref false in
  let events =
    List.map
      (function
        | Log.Grant { lock; tid } when not !tampered ->
          tampered := true;
          Log.Grant { lock; tid = tid + 1 }
        | ev -> ev)
      log.Log.events
  in
  check "log has a grant to tamper with" true !tampered;
  match Record.replay { log with Log.events } with
  | Error e -> Alcotest.failf "tampered replay failed outright: %s" e
  | Ok (_, fidelity) ->
    check "tampered grant reported as a fidelity violation" true
      (match fidelity with Error _ -> true | Ok () -> false)

let test_tampered_anchor_detected () =
  (* keys-10k makes enough lock acquisitions to cross the 64-grant
     anchor cadence; nudging one recorded clock must trip the strict
     replayer's clock check. *)
  let spec = Registry.find "keys-10k" in
  let detector = Runner.Kard (Defaults.kard_config ()) in
  let _, log = Record.record ~scale:0.01 ~detector (Record.Spec spec) in
  let tampered = ref false in
  let events =
    List.map
      (function
        | Log.Anchor { picks; clock } when not !tampered ->
          tampered := true;
          Log.Anchor { picks; clock = clock + 1 }
        | ev -> ev)
      log.Log.events
  in
  check "log has an anchor to tamper with" true !tampered;
  match Record.replay { log with Log.events } with
  | Error e -> Alcotest.failf "tampered replay failed outright: %s" e
  | Ok (_, fidelity) ->
    check "tampered anchor reported as a fidelity violation" true
      (match fidelity with Error _ -> true | Ok () -> false)

(* {1 The checked-in regression fixture} *)

(* A log recorded from fuzz campaign program 42:43 (the replay-oracle
   config, with a lock-rich program so the grant stream is pinned
   too).  The program is reconstructed from the header alone, so the
   fixture pins the wire format, the campaign's generator determinism
   and the replayer at once. *)
let fixture = Filename.concat (Filename.concat "fixtures" "replay") "fuzz-42-43.rlog"

let test_fixture_replays () =
  let log = Log.of_file fixture in
  check "fixture is a kard recording" true (log.Log.header.Log.detector = "kard");
  match Campaign.of_target log.Log.header.Log.target with
  | None -> Alcotest.failf "fixture target %s does not parse" log.Log.header.Log.target
  | Some (seed, index) ->
    check_int "campaign seed" 42 seed;
    check_int "program index" 43 index;
    let r = Campaign.reconstruct ~seed index in
    check "entry 43 is a replay-oracle config" true r.Campaign.rp_replay;
    check "log carries grants to verify" true (Log.grant_count log > 0);
    check_int "header seed matches the reconstruction" r.Campaign.rp_machine_seed
      log.Log.header.Log.seed;
    let build machine =
      let (_ : Prog.run_ctx) =
        Prog.spawn_all r.Campaign.rp_prog ~machine ~on_event:(fun _ -> ())
      in
      ()
    in
    (match Record.replay_build log build (Printf.sprintf "fuzz-%d-%d" seed index) with
    | Error e -> Alcotest.failf "fixture replay failed: %s" e
    | Ok (_, fidelity) ->
      check "fixture tape consumed" true (fidelity = Ok ()))

let test_fixture_reencodes_identically () =
  let ic = open_in_bin fixture in
  let raw = really_input_string ic (in_channel_length ic) in
  close_in ic;
  check "encode (decode bytes) = bytes" true (Log.encode (Log.decode raw) = raw)

let () =
  Alcotest.run "replay"
    [ ( "codec",
        [ QCheck_alcotest.to_alcotest codec_roundtrip;
          Alcotest.test_case "bad magic rejected" `Quick test_bad_magic;
          Alcotest.test_case "version mismatch rejected" `Quick test_version_mismatch;
          Alcotest.test_case "every truncation rejected" `Quick test_truncation_rejected;
          Alcotest.test_case "trailing bytes rejected" `Quick test_trailing_bytes_rejected;
          Alcotest.test_case "non-canonical pick rejected" `Quick
            test_non_canonical_pick_rejected ] );
      ( "targets",
        [ Alcotest.test_case "find_subject forms" `Quick test_find_subject ] );
      ( "identity",
        [ Alcotest.test_case "race suite round-trips" `Quick test_race_suite_roundtrip;
          Alcotest.test_case "keys-10k settings matrix" `Quick test_spec_settings_matrix;
          Alcotest.test_case "zero cost and wire budget" `Quick
            test_spec_zero_cost_and_budget;
          Alcotest.test_case "Chrome trace bytes" `Quick test_trace_identity ] );
      ( "cross-detector",
        [ Alcotest.test_case "record sampled, replay full" `Quick test_cross_detector ] );
      ( "fidelity",
        [ Alcotest.test_case "tampered grant detected" `Quick test_tampered_grant_detected;
          Alcotest.test_case "tampered anchor detected" `Quick
            test_tampered_anchor_detected ] );
      ( "fixture",
        [ Alcotest.test_case "fuzz-42-43.rlog replays" `Quick test_fixture_replays;
          Alcotest.test_case "fixture bytes re-encode identically" `Quick
            test_fixture_reencodes_identically ] ) ]
