(* A realistic end-to-end run: the NGINX workload model served with
   Kard attached, reproducing the initialization-time data race the
   paper reports (Table 6), alongside the performance cost of
   detection under three detectors. *)

module Runner = Kard_harness.Runner
module Machine = Kard_sched.Machine

let () =
  let spec = Kard_workloads.Registry.find "nginx" in
  Format.printf "workload: %a@.@." Kard_workloads.Spec.pp spec;
  let scale = 0.005 in
  let baseline = Runner.run ~scale ~detector:Runner.Baseline spec in
  let kard = Runner.run ~scale ~detector:(Runner.Kard (Kard_harness.Defaults.kard_config ())) spec in
  let tsan = Runner.run ~scale ~detector:Runner.Tsan spec in
  let cycles r = r.Runner.report.Machine.cycles in
  Format.printf "baseline: %11d simulated cycles@." (cycles baseline);
  Format.printf "kard:     %11d (%+.1f%%)@." (cycles kard) (Runner.overhead_pct ~baseline kard);
  Format.printf "tsan:     %11d (%+.1f%%)@.@." (cycles tsan) (Runner.overhead_pct ~baseline tsan);
  Format.printf "kard found %d data race(s):@." (List.length kard.Runner.kard_races);
  List.iter (fun race -> Format.printf "  %a@." Kard_core.Race_record.pp race) kard.Runner.kard_races;
  Format.printf "tsan confirms %d (ILU)@." (List.length tsan.Runner.tsan_ilu_races);
  if kard.Runner.kard_races = [] then exit 1
