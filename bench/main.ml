(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 7) and runs Bechamel micro-benchmarks
   of the library's hot paths.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only table3
     dune exec bench/main.exe -- --scale 0.05 # closer to full size
     dune exec bench/main.exe -- --jobs 4     # Domain-parallel tables
     dune exec bench/main.exe -- --list

   Experiment ids: micro, bechamel, figure2, table1 (= table4 =
   scenarios), table3, table5, table6, figure5, nginx-sweep, memory,
   throughput, parallel, serve, shard, keys, sampling, record, obs,
   nolock, explore, ablation.

   [throughput] additionally writes its rows as JSON to --bench-out
   (default BENCH_pr4.json): the tracked simulator ops/sec benchmark
   behind the scheduler/TLB fast paths and the allocation-free
   compiled loop.  The checked-in file is produced with

     dune exec --profile release bench/main.exe -- \
       --only throughput --scale 0.05 --build-label release

   (release is ~20% faster than dev with bit-identical simulation
   results; --build-label records which profile the rows came from).
   [parallel] writes
   --parallel-out (default BENCH_pr3.json): serial vs Domain-parallel
   wall-clock of the Table 3 job list, with an end-to-end identity
   check of the two result lists.  [serve] writes --serve-out
   (default BENCH_pr6.json): the open-loop serving sweep — latency
   percentiles per (detector, offered rate) and goodput under the
   p99 SLO; its rows are simulation outputs, byte-identical at any
   --jobs value.  [shard] writes --shard-out (default BENCH_pr7.json):
   wall-clock of a single contended 64-thread Kard run at each shard
   count (--shards n extends the 1/2/4/8 sweep), with a structural
   identity check of every sharded result against the shards=1 run.
   [keys] writes --keys-out (default BENCH_pr8.json): the key-pressure
   precision sweep — planted vs detected wrong-lock races per
   (object-count point, detector config), physical-key ablation
   4/8/13 each with and without the virtual-key pool; rows are
   simulation outputs, byte-identical at any --jobs/--shards value.
   [sampling] writes --sampling-out (default BENCH_pr9.json): the
   sampling sweep — detection probability and detection-latency
   distribution (CS entries until the first race record) per
   (subject, rate), the subset check against the same-seed rate-1.0
   runs, plus the serve sweep rerun with sampled-kard detectors; rows
   are simulation outputs, byte-identical at any --jobs/--shards
   value.  [record] writes --record-out (default BENCH_pr10.json):
   record/replay overhead — host-time cost of the nondeterminism
   recorder, the simulated-cycle overhead (contract: exactly 0), log
   bytes per step against the DESIGN.md section 13 budget, and a
   strict-replay identity check per subject; its cells are wall-clock
   timed, so like [throughput] it stays serial.

   Table experiments run on the Domain pool; --jobs (or $KARD_JOBS)
   sets the worker count, defaulting to the host core count.
   [throughput] stays serial regardless — its cells are wall-clock
   timed and must not compete for host cores. *)

module Experiments = Kard_harness.Experiments
module Runner = Kard_harness.Runner
module Registry = Kard_workloads.Registry
module Config = Kard_core.Config
module Defaults = Kard_harness.Defaults

let scale = ref 0.01
let only = ref []
let bench_out = ref Kard_harness.Defaults.throughput_out
let parallel_out = ref Kard_harness.Defaults.parallel_out
let serve_out = ref Kard_harness.Defaults.serve_out
let shard_out = ref Kard_harness.Defaults.shard_out
let keys_out = ref Kard_harness.Defaults.keys_out
let sampling_out = ref Kard_harness.Defaults.sampling_out
let record_out = ref Kard_harness.Defaults.record_out
let build_label = ref "dev"

(* [None] lets Pool fall back to $KARD_JOBS / the host core count. *)
let jobs : int option ref = ref None

(* [None] lets machines fall back to $KARD_SHARDS / 1.  For the
   [shard] experiment this instead extends the swept shard counts. *)
let shards : int option ref = ref None

(* {1 Bechamel micro-benchmarks: the simulator's real hot paths} *)

let bench_mpk_check () =
  let hw = Kard_mpk.Mpk_hw.create () in
  Kard_mpk.Mpk_hw.register_thread hw 0;
  let (_ : int) = Kard_mpk.Mpk_hw.pkey_mprotect hw ~base:0x10000 ~len:4096 (Kard_mpk.Pkey.of_int 3) in
  Bechamel.Test.make ~name:"mpk_hw.check_access"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Kard_mpk.Mpk_hw.check_access hw ~tid:0 ~addr:0x10010 ~access:`Read ~ip:0 ~time:0
             : (int, Kard_mpk.Fault.t) result)))

let bench_pkru_update () =
  Bechamel.Test.make ~name:"pkru.set"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Kard_mpk.Pkru.set Kard_mpk.Pkru.deny_all (Kard_mpk.Pkey.of_int 5)
              Kard_mpk.Perm.Read_write
             : Kard_mpk.Pkru.t)))

let bench_algorithm_step () =
  let t = Kard_core.Algorithm.create () in
  let i = ref 0 in
  Bechamel.Test.make ~name:"algorithm.step (enter/write/exit)"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         let thread = !i land 1 in
         ignore (Kard_core.Algorithm.step t (Kard_core.Algorithm.Enter { thread; section = 1 }));
         ignore (Kard_core.Algorithm.step t (Kard_core.Algorithm.Write { thread; obj = 1 }));
         ignore (Kard_core.Algorithm.step t (Kard_core.Algorithm.Exit { thread }))))

let bench_tlb () =
  let tlb = Kard_mpk.Tlb.create () in
  let i = ref 0 in
  Bechamel.Test.make ~name:"tlb.access"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         ignore (Kard_mpk.Tlb.access tlb (!i land 127) : [ `Hit | `Miss ])))

let bench_unique_alloc () =
  let phys = Kard_vm.Phys_mem.create () in
  let aspace = Kard_vm.Address_space.create phys in
  let meta = Kard_alloc.Meta_table.create () in
  let upa =
    Kard_alloc.Unique_page_alloc.create aspace ~meta ~cost:Kard_mpk.Cost_model.default ()
  in
  let iface = Kard_alloc.Unique_page_alloc.iface upa in
  Bechamel.Test.make ~name:"unique_page_alloc.alloc(32B)"
    (Bechamel.Staged.stage (fun () ->
         ignore (iface.Kard_alloc.Alloc_iface.alloc ~site:0 32 : Kard_alloc.Obj_meta.t * int)))

let run_bechamel () =
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"kard"
      [ bench_mpk_check (); bench_pkru_update (); bench_algorithm_step (); bench_tlb ();
        bench_unique_alloc () ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      (Toolkit.Instance.monotonic_clock) raw
  in
  Printf.printf "host-time cost of the library's hot paths (ns/op):\n";
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-36s %8.1f\n" name est
      | _ -> ())
    results;
  print_newline ()

(* {1 Observability: latency distributions behind the Table 3 means} *)

let obs () =
  Printf.printf
    "metrics registries of traced Kard runs — the distributions (p50/p95/p99)\n\
     behind the mean overheads the tables report:\n\n";
  List.iter
    (fun name ->
      let spec = Registry.find name in
      let tr = Kard_obs.Trace.create () in
      let r = Runner.run ~trace:tr ~scale:!scale ~detector:(Runner.Kard (Defaults.kard_config ())) spec in
      Printf.printf "-- %s (%s cycles, %d faults) --\n" name
        (Kard_harness.Text_table.fmt_int r.Runner.report.Kard_sched.Machine.cycles)
        r.Runner.report.Kard_sched.Machine.faults;
      Kard_harness.Obs_report.print_trace_summary tr;
      print_newline ();
      Kard_harness.Obs_report.print_metrics (Kard_obs.Trace.metrics tr);
      print_newline ())
    [ "memcached"; "aget" ]

(* {1 Lock-free benchmarks: the section 7.2 omission claim} *)

let nolock () =
  Printf.printf
    "benchmarks without locks were omitted from Table 3 because Kard adds no overhead;\n\
     demonstrated here (only the allocator substitution remains):\n";
  let cells =
    List.map
      (fun spec ->
        let base = Runner.run ~scale:!scale ~detector:Runner.Baseline spec in
        let alloc = Runner.run ~scale:!scale ~detector:Runner.Alloc spec in
        let kard = Runner.run ~scale:!scale ~detector:(Runner.Kard (Defaults.kard_config ())) spec in
        [ spec.Kard_workloads.Spec.name;
          Kard_harness.Text_table.fmt_pct (Runner.overhead_pct ~baseline:base alloc);
          Kard_harness.Text_table.fmt_pct (Runner.overhead_pct ~baseline:base kard);
          string_of_int kard.Runner.report.Kard_sched.Machine.faults;
          string_of_int kard.Runner.report.Kard_sched.Machine.cs_entries ])
      Registry.lock_free
  in
  print_string
    (Kard_harness.Text_table.render
       ~header:[ "benchmark"; "alloc%"; "kard%"; "faults"; "cs entries" ]
       cells)

(* {1 Schedule exploration: detection is schedule-sensitive} *)

let explore () =
  Printf.printf "per-run detection probability across 20 scheduler seeds:\n";
  List.iter
    (fun name ->
      let scenario = Kard_workloads.Race_suite.find name in
      Kard_harness.Explorer.print_summary ~name
        (Kard_harness.Explorer.explore_scenario ?jobs:!jobs scenario))
    [ "ilu-lock-lock"; "ilu-lock-nolock"; "exclusive-write"; "different-offset-small-cs";
      "small-cs-race" ];
  List.iter
    (fun name ->
      Kard_harness.Explorer.print_summary ~name
        (Kard_harness.Explorer.explore_spec ?jobs:!jobs (Registry.find name)))
    [ "aget"; "nginx" ];
  (* Section 5.5's mitigation: delay injection raises the detection
     rate of rarely-overlapping sections. *)
  let scenario = Kard_workloads.Race_suite.small_cs_race in
  List.iter
    (fun (label, delay) ->
      let config = { Config.default with Config.exit_delay_cycles = delay } in
      Kard_harness.Explorer.print_summary
        ~name:(Printf.sprintf "small-cs-race %s" label)
        (Kard_harness.Explorer.explore_scenario ?jobs:!jobs ~config scenario))
    [ ("(no delay)", 0); ("(delay 50k)", 50_000); ("(delay 200k)", 200_000) ]

(* {1 Tracked throughput benchmark (BENCH_pr4.json)} *)

(* The reference measurement for the compiled-loop PR: the same
   harness (GC counters included) on the same host, at the last
   commit before the compiled interpreter and array-indexed detector
   state landed.  Embedded as constants so regenerating the file
   keeps the before/after comparison self-contained; the rows were
   taken on the dev profile (the release numbers in the main section
   are ~20% faster for build reasons alone — compare
   minor_words_per_step and steps/sim_cycles across sections, and
   wall-clock only within one). *)
let pre_pr_commit = "5c85b9a"
let pre_pr_build = "dev"

let pre_pr_rows =
  Experiments.
    [ { tp_threads = 1; tp_detector = "baseline"; tp_steps = 113595; tp_sim_cycles = 289376447;
        tp_host_seconds = 0.0235062; tp_ops_per_sec = 4832560.0; tp_minor_words = 5174950.0;
        tp_promoted_words = 6223.0; tp_minor_words_per_step = 45.5561 };
      { tp_threads = 1; tp_detector = "kard"; tp_steps = 113595; tp_sim_cycles = 373179631;
        tp_host_seconds = 0.036963; tp_ops_per_sec = 3073210.0; tp_minor_words = 7566910.0;
        tp_promoted_words = 23274.0; tp_minor_words_per_step = 66.613 };
      { tp_threads = 2; tp_detector = "baseline"; tp_steps = 113064; tp_sim_cycles = 289376136;
        tp_host_seconds = 0.0267441; tp_ops_per_sec = 4227620.0; tp_minor_words = 5089600.0;
        tp_promoted_words = 8827.0; tp_minor_words_per_step = 45.0152 };
      { tp_threads = 2; tp_detector = "kard"; tp_steps = 113064; tp_sim_cycles = 345380331;
        tp_host_seconds = 0.0380261; tp_ops_per_sec = 2973330.0; tp_minor_words = 7566240.0;
        tp_promoted_words = 29316.0; tp_minor_words_per_step = 66.92 };
      { tp_threads = 4; tp_detector = "baseline"; tp_steps = 112840; tp_sim_cycles = 289376434;
        tp_host_seconds = 0.025737; tp_ops_per_sec = 4384340.0; tp_minor_words = 5110440.0;
        tp_promoted_words = 13065.0; tp_minor_words_per_step = 45.2892 };
      { tp_threads = 4; tp_detector = "kard"; tp_steps = 112840; tp_sim_cycles = 331027744;
        tp_host_seconds = 0.0404019; tp_ops_per_sec = 2792940.0; tp_minor_words = 7410110.0;
        tp_promoted_words = 35468.0; tp_minor_words_per_step = 65.6692 };
      { tp_threads = 8; tp_detector = "baseline"; tp_steps = 112822; tp_sim_cycles = 289377453;
        tp_host_seconds = 0.0278182; tp_ops_per_sec = 4055690.0; tp_minor_words = 5089250.0;
        tp_promoted_words = 21785.0; tp_minor_words_per_step = 45.1087 };
      { tp_threads = 8; tp_detector = "kard"; tp_steps = 112822; tp_sim_cycles = 324521712;
        tp_host_seconds = 0.0426519; tp_ops_per_sec = 2645180.0; tp_minor_words = 7172760.0;
        tp_promoted_words = 47805.0; tp_minor_words_per_step = 63.5759 };
      { tp_threads = 16; tp_detector = "baseline"; tp_steps = 112935; tp_sim_cycles = 310683857;
        tp_host_seconds = 0.0313699; tp_ops_per_sec = 3600100.0; tp_minor_words = 5289080.0;
        tp_promoted_words = 41844.0; tp_minor_words_per_step = 46.833 };
      { tp_threads = 16; tp_detector = "kard"; tp_steps = 112935; tp_sim_cycles = 347724375;
        tp_host_seconds = 0.0475202; tp_ops_per_sec = 2376570.0; tp_minor_words = 7341980.0;
        tp_promoted_words = 79160.0; tp_minor_words_per_step = 65.0107 };
      { tp_threads = 32; tp_detector = "baseline"; tp_steps = 113567; tp_sim_cycles = 396181631;
        tp_host_seconds = 0.0349629; tp_ops_per_sec = 3248220.0; tp_minor_words = 5119030.0;
        tp_promoted_words = 96828.0; tp_minor_words_per_step = 45.075 };
      { tp_threads = 32; tp_detector = "kard"; tp_steps = 113567; tp_sim_cycles = 470199551;
        tp_host_seconds = 0.053087; tp_ops_per_sec = 2139260.0; tp_minor_words = 7343570.0;
        tp_promoted_words = 160051.0; tp_minor_words_per_step = 64.6629 };
      { tp_threads = 64; tp_detector = "baseline"; tp_steps = 114584; tp_sim_cycles = 588743173;
        tp_host_seconds = 0.0404811; tp_ops_per_sec = 2830560.0; tp_minor_words = 5250340.0;
        tp_promoted_words = 200132.0; tp_minor_words_per_step = 45.8209 };
      { tp_threads = 64; tp_detector = "kard"; tp_steps = 114584; tp_sim_cycles = 753003442;
        tp_host_seconds = 0.0626559; tp_ops_per_sec = 1828780.0; tp_minor_words = 7516430.0;
        tp_promoted_words = 296597.0; tp_minor_words_per_step = 65.5975 } ]

let throughput () =
  let rows = Experiments.throughput ~scale:!scale () in
  Experiments.print_throughput rows;
  let json =
    Kard_harness.Json_report.of_throughput
      ~pre:(pre_pr_commit, pre_pr_build, pre_pr_rows)
      ~build:!build_label ~workload:"memcached" ~scale:!scale ~seed:42 rows
  in
  let oc = open_out !bench_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !bench_out

(* {1 Tracked parallel-executor benchmark (BENCH_pr3.json)} *)

let parallel () =
  let b = Experiments.parallel_bench ?jobs:!jobs ~scale:!scale () in
  Experiments.print_parallel_bench b;
  let json = Kard_harness.Json_report.of_parallel_bench ~scale:!scale b in
  let oc = open_out !parallel_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !parallel_out

(* {1 Tracked serve sweep (BENCH_pr6.json)} *)

let serve () =
  (* The serve sweep has its own default scale: percentile tails need
     more requests per point than the table experiments need entries,
     and the sweep is cheap.  --scale only overrides it when the user
     moved it off the global default. *)
  let scale =
    if !scale = 0.01 then Kard_harness.Defaults.serve_scale else !scale
  in
  let threads = Kard_harness.Defaults.table_threads in
  let seed = Kard_harness.Defaults.seed in
  let sweep = Experiments.serve ?jobs:!jobs ~threads ~scale ~seed ?shards:!shards () in
  Experiments.print_serve sweep;
  let json = Kard_harness.Json_report.of_serve_sweep ~threads ~scale ~seed sweep in
  let oc = open_out !serve_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !serve_out

(* {1 Tracked sharded single-run benchmark (BENCH_pr7.json)} *)

let shard () =
  (* One contended 64-thread run per shard count, wall-clock timed —
     full scale regardless of --scale (a scaled-down convoy is too
     short to time).  --shards n adds n to the default 1/2/4/8 sweep. *)
  let shard_counts =
    match !shards with
    | Some n when not (List.mem n Experiments.default_shard_counts) ->
      Experiments.default_shard_counts @ [ n ]
    | Some _ | None -> Experiments.default_shard_counts
  in
  let b = Experiments.shard_bench ~shard_counts () in
  Experiments.print_shard_bench b;
  let json = Kard_harness.Json_report.of_shard_bench ~build:!build_label b in
  let oc = open_out !shard_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !shard_out

(* {1 Tracked key-pressure precision sweep (BENCH_pr8.json)} *)

let keys () =
  (* The precision claim is about object {e count}, so the sweep runs
     at full scale by default — 10k and 100k objects per point, far
     past the 13 physical keys.  --scale only overrides it when the
     user moved it off the global default. *)
  let scale = if !scale = 0.01 then 1.0 else !scale in
  let seed = Kard_harness.Defaults.seed in
  let b = Experiments.keys ?jobs:!jobs ~scale ~seed ?shards:!shards () in
  Experiments.print_keys_bench b;
  let json = Kard_harness.Json_report.of_keys_bench ~build:!build_label b in
  let oc = open_out !keys_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !keys_out

(* {1 Tracked sampling sweep (BENCH_pr9.json)} *)

let sampling () =
  (* Race scenarios run at full scale regardless; --scale only moves
     the key-pressure subject off its 0.1 default. *)
  let scale = if !scale = 0.01 then None else Some !scale in
  let b = Experiments.sampling ?jobs:!jobs ?scale ?shards:!shards () in
  Experiments.print_sampling b;
  let json =
    Kard_harness.Json_report.of_sampling_bench ~build:!build_label
      ~threads:Kard_harness.Defaults.table_threads ~scale:Kard_harness.Defaults.serve_scale
      ~seed:Kard_harness.Defaults.seed b
  in
  let oc = open_out !sampling_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !sampling_out

(* {1 Tracked record/replay overhead benchmark (BENCH_pr10.json)} *)

let record () =
  (* Wall-clock timed cells: serial like [throughput], and the default
     subjects already mix spec, key-pressure and scenario targets. *)
  let b = Experiments.record_bench ~scale:!scale ?shards:!shards () in
  Experiments.print_record b;
  let json = Kard_harness.Json_report.of_record_bench ~build:!build_label b in
  let oc = open_out !record_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !record_out

(* {1 Driver} *)

let experiments =
  [ ("micro", fun () -> Experiments.print_micro ());
    ("bechamel", run_bechamel);
    ("figure2", fun () -> Experiments.print_figure2 (Experiments.figure2 ()));
    ("table1", fun () -> Experiments.print_scenarios (Experiments.scenarios ?jobs:!jobs ()));
    ( "table3",
      fun () -> Experiments.print_table3 (Experiments.table3 ?jobs:!jobs ~scale:!scale ()) );
    ( "table5",
      fun () ->
        print_endline "full key budget (13 data keys):";
        Experiments.print_table5 (Experiments.table5 ?jobs:!jobs ~scale:!scale ());
        print_endline "\npressure-scaled key budget (4 data keys; see EXPERIMENTS.md):";
        Experiments.print_table5 (Experiments.table5 ?jobs:!jobs ~data_keys:4 ~scale:!scale ()) );
    ( "table6",
      fun () -> Experiments.print_table6 (Experiments.table6 ?jobs:!jobs ~scale:!scale ()) );
    ( "figure5",
      fun () -> Experiments.print_figure5 (Experiments.figure5 ?jobs:!jobs ~scale:!scale ()) );
    ( "nginx-sweep",
      fun () ->
        Experiments.print_nginx_sweep (Experiments.nginx_sweep ?jobs:!jobs ~scale:!scale ()) );
    ("memory", fun () -> Experiments.print_memory (Experiments.memory ?jobs:!jobs ~scale:!scale ()));
    ("throughput", throughput);
    ("parallel", parallel);
    ("serve", serve);
    ("shard", shard);
    ("keys", keys);
    ("sampling", sampling);
    ("record", record);
    ("obs", obs);
    ("nolock", nolock);
    ("explore", explore);
    ( "ablation",
      fun () -> Experiments.print_ablation (Experiments.ablation ?jobs:!jobs ~scale:!scale ()) ) ]

let () =
  let rec parse = function
    | [] -> ()
    | "--only" :: name :: rest ->
      (* Fail fast on a typo: a name outside the registry would
         otherwise silently drop out of a multi-name selection. *)
      if not (List.mem_assoc name experiments) then begin
        Printf.eprintf "unknown experiment %S; known experiments:\n" name;
        List.iter (fun (n, _) -> Printf.eprintf "  %s\n" n) experiments;
        exit 2
      end;
      only := name :: !only;
      parse rest
    | "--scale" :: s :: rest ->
      scale := float_of_string s;
      parse rest
    | "--bench-out" :: path :: rest ->
      bench_out := path;
      parse rest
    | "--parallel-out" :: path :: rest ->
      parallel_out := path;
      parse rest
    | "--serve-out" :: path :: rest ->
      serve_out := path;
      parse rest
    | "--shard-out" :: path :: rest ->
      shard_out := path;
      parse rest
    | "--keys-out" :: path :: rest ->
      keys_out := path;
      parse rest
    | "--sampling-out" :: path :: rest ->
      sampling_out := path;
      parse rest
    | "--record-out" :: path :: rest ->
      record_out := path;
      parse rest
    | "--shards" :: n :: rest ->
      shards := Some (int_of_string n);
      parse rest
    | "--build-label" :: label :: rest ->
      build_label := label;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := Some (int_of_string n);
      parse rest
    | "--list" :: _ ->
      List.iter (fun (name, _) -> print_endline name) experiments;
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    if !only = [] then experiments
    else List.filter (fun (name, _) -> List.mem name !only) experiments
  in
  if selected = [] then begin
    Printf.eprintf "no experiment matched; try --list\n";
    exit 2
  end;
  List.iter
    (fun (name, run) ->
      Printf.printf "==== %s ====\n%!" name;
      run ();
      print_newline ())
    selected
