(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (section 7) and runs Bechamel micro-benchmarks
   of the library's hot paths.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe -- --only table3
     dune exec bench/main.exe -- --scale 0.05 # closer to full size
     dune exec bench/main.exe -- --jobs 4     # Domain-parallel tables
     dune exec bench/main.exe -- --list

   Experiment ids: micro, bechamel, figure2, table1 (= table4 =
   scenarios), table3, table5, table6, figure5, nginx-sweep, memory,
   throughput, parallel, obs, nolock, explore, ablation.

   [throughput] additionally writes its rows as JSON to --bench-out
   (default BENCH_pr2.json): the tracked simulator ops/sec benchmark
   behind the scheduler/TLB fast-path work.  [parallel] writes
   --parallel-out (default BENCH_pr3.json): serial vs Domain-parallel
   wall-clock of the Table 3 job list, with an end-to-end identity
   check of the two result lists.

   Table experiments run on the Domain pool; --jobs (or $KARD_JOBS)
   sets the worker count, defaulting to the host core count.
   [throughput] stays serial regardless — its cells are wall-clock
   timed and must not compete for host cores. *)

module Experiments = Kard_harness.Experiments
module Runner = Kard_harness.Runner
module Registry = Kard_workloads.Registry
module Config = Kard_core.Config

let scale = ref 0.01
let only = ref []
let bench_out = ref "BENCH_pr2.json"
let parallel_out = ref "BENCH_pr3.json"

(* [None] lets Pool fall back to $KARD_JOBS / the host core count. *)
let jobs : int option ref = ref None

(* {1 Bechamel micro-benchmarks: the simulator's real hot paths} *)

let bench_mpk_check () =
  let hw = Kard_mpk.Mpk_hw.create () in
  Kard_mpk.Mpk_hw.register_thread hw 0;
  let (_ : int) = Kard_mpk.Mpk_hw.pkey_mprotect hw ~base:0x10000 ~len:4096 (Kard_mpk.Pkey.of_int 3) in
  Bechamel.Test.make ~name:"mpk_hw.check_access"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Kard_mpk.Mpk_hw.check_access hw ~tid:0 ~addr:0x10010 ~access:`Read ~ip:0 ~time:0
             : (int, Kard_mpk.Fault.t) result)))

let bench_pkru_update () =
  Bechamel.Test.make ~name:"pkru.set"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Kard_mpk.Pkru.set Kard_mpk.Pkru.deny_all (Kard_mpk.Pkey.of_int 5)
              Kard_mpk.Perm.Read_write
             : Kard_mpk.Pkru.t)))

let bench_algorithm_step () =
  let t = Kard_core.Algorithm.create () in
  let i = ref 0 in
  Bechamel.Test.make ~name:"algorithm.step (enter/write/exit)"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         let thread = !i land 1 in
         ignore (Kard_core.Algorithm.step t (Kard_core.Algorithm.Enter { thread; section = 1 }));
         ignore (Kard_core.Algorithm.step t (Kard_core.Algorithm.Write { thread; obj = 1 }));
         ignore (Kard_core.Algorithm.step t (Kard_core.Algorithm.Exit { thread }))))

let bench_tlb () =
  let tlb = Kard_mpk.Tlb.create () in
  let i = ref 0 in
  Bechamel.Test.make ~name:"tlb.access"
    (Bechamel.Staged.stage (fun () ->
         incr i;
         ignore (Kard_mpk.Tlb.access tlb (!i land 127) : [ `Hit | `Miss ])))

let bench_unique_alloc () =
  let phys = Kard_vm.Phys_mem.create () in
  let aspace = Kard_vm.Address_space.create phys in
  let meta = Kard_alloc.Meta_table.create () in
  let upa =
    Kard_alloc.Unique_page_alloc.create aspace ~meta ~cost:Kard_mpk.Cost_model.default ()
  in
  let iface = Kard_alloc.Unique_page_alloc.iface upa in
  Bechamel.Test.make ~name:"unique_page_alloc.alloc(32B)"
    (Bechamel.Staged.stage (fun () ->
         ignore (iface.Kard_alloc.Alloc_iface.alloc ~site:0 32 : Kard_alloc.Obj_meta.t * int)))

let run_bechamel () =
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"kard"
      [ bench_mpk_check (); bench_pkru_update (); bench_algorithm_step (); bench_tlb ();
        bench_unique_alloc () ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
  let raw = Benchmark.all cfg instances tests in
  let results =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
      (Toolkit.Instance.monotonic_clock) raw
  in
  Printf.printf "host-time cost of the library's hot paths (ns/op):\n";
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-36s %8.1f\n" name est
      | _ -> ())
    results;
  print_newline ()

(* {1 Observability: latency distributions behind the Table 3 means} *)

let obs () =
  Printf.printf
    "metrics registries of traced Kard runs — the distributions (p50/p95/p99)\n\
     behind the mean overheads the tables report:\n\n";
  List.iter
    (fun name ->
      let spec = Registry.find name in
      let tr = Kard_obs.Trace.create () in
      let r = Runner.run ~trace:tr ~scale:!scale ~detector:(Runner.Kard Config.default) spec in
      Printf.printf "-- %s (%s cycles, %d faults) --\n" name
        (Kard_harness.Text_table.fmt_int r.Runner.report.Kard_sched.Machine.cycles)
        r.Runner.report.Kard_sched.Machine.faults;
      Kard_harness.Obs_report.print_trace_summary tr;
      print_newline ();
      Kard_harness.Obs_report.print_metrics (Kard_obs.Trace.metrics tr);
      print_newline ())
    [ "memcached"; "aget" ]

(* {1 Lock-free benchmarks: the section 7.2 omission claim} *)

let nolock () =
  Printf.printf
    "benchmarks without locks were omitted from Table 3 because Kard adds no overhead;\n\
     demonstrated here (only the allocator substitution remains):\n";
  let cells =
    List.map
      (fun spec ->
        let base = Runner.run ~scale:!scale ~detector:Runner.Baseline spec in
        let alloc = Runner.run ~scale:!scale ~detector:Runner.Alloc spec in
        let kard = Runner.run ~scale:!scale ~detector:(Runner.Kard Config.default) spec in
        [ spec.Kard_workloads.Spec.name;
          Kard_harness.Text_table.fmt_pct (Runner.overhead_pct ~baseline:base alloc);
          Kard_harness.Text_table.fmt_pct (Runner.overhead_pct ~baseline:base kard);
          string_of_int kard.Runner.report.Kard_sched.Machine.faults;
          string_of_int kard.Runner.report.Kard_sched.Machine.cs_entries ])
      Registry.lock_free
  in
  print_string
    (Kard_harness.Text_table.render
       ~header:[ "benchmark"; "alloc%"; "kard%"; "faults"; "cs entries" ]
       cells)

(* {1 Schedule exploration: detection is schedule-sensitive} *)

let explore () =
  Printf.printf "per-run detection probability across 20 scheduler seeds:\n";
  List.iter
    (fun name ->
      let scenario = Kard_workloads.Race_suite.find name in
      Kard_harness.Explorer.print_summary ~name
        (Kard_harness.Explorer.explore_scenario ?jobs:!jobs scenario))
    [ "ilu-lock-lock"; "ilu-lock-nolock"; "exclusive-write"; "different-offset-small-cs";
      "small-cs-race" ];
  List.iter
    (fun name ->
      Kard_harness.Explorer.print_summary ~name
        (Kard_harness.Explorer.explore_spec ?jobs:!jobs (Registry.find name)))
    [ "aget"; "nginx" ];
  (* Section 5.5's mitigation: delay injection raises the detection
     rate of rarely-overlapping sections. *)
  let scenario = Kard_workloads.Race_suite.small_cs_race in
  List.iter
    (fun (label, delay) ->
      let config = { Config.default with Config.exit_delay_cycles = delay } in
      Kard_harness.Explorer.print_summary
        ~name:(Printf.sprintf "small-cs-race %s" label)
        (Kard_harness.Explorer.explore_scenario ?jobs:!jobs ~config scenario))
    [ ("(no delay)", 0); ("(delay 50k)", 50_000); ("(delay 200k)", 200_000) ]

(* {1 Tracked throughput benchmark (BENCH_pr2.json)} *)

let throughput () =
  let rows = Experiments.throughput ~scale:!scale () in
  Experiments.print_throughput rows;
  let json =
    Kard_harness.Json_report.of_throughput ~workload:"memcached" ~scale:!scale ~seed:42 rows
  in
  let oc = open_out !bench_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !bench_out

(* {1 Tracked parallel-executor benchmark (BENCH_pr3.json)} *)

let parallel () =
  let b = Experiments.parallel_bench ?jobs:!jobs ~scale:!scale () in
  Experiments.print_parallel_bench b;
  let json = Kard_harness.Json_report.of_parallel_bench ~scale:!scale b in
  let oc = open_out !parallel_out in
  output_string oc (Kard_harness.Json_report.pretty json);
  output_char oc '\n';
  close_out oc;
  Printf.printf "wrote %s\n" !parallel_out

(* {1 Driver} *)

let experiments =
  [ ("micro", fun () -> Experiments.print_micro ());
    ("bechamel", run_bechamel);
    ("figure2", fun () -> Experiments.print_figure2 (Experiments.figure2 ()));
    ("table1", fun () -> Experiments.print_scenarios (Experiments.scenarios ?jobs:!jobs ()));
    ( "table3",
      fun () -> Experiments.print_table3 (Experiments.table3 ?jobs:!jobs ~scale:!scale ()) );
    ( "table5",
      fun () ->
        print_endline "full key budget (13 data keys):";
        Experiments.print_table5 (Experiments.table5 ?jobs:!jobs ~scale:!scale ());
        print_endline "\npressure-scaled key budget (4 data keys; see EXPERIMENTS.md):";
        Experiments.print_table5 (Experiments.table5 ?jobs:!jobs ~data_keys:4 ~scale:!scale ()) );
    ( "table6",
      fun () -> Experiments.print_table6 (Experiments.table6 ?jobs:!jobs ~scale:!scale ()) );
    ( "figure5",
      fun () -> Experiments.print_figure5 (Experiments.figure5 ?jobs:!jobs ~scale:!scale ()) );
    ( "nginx-sweep",
      fun () ->
        Experiments.print_nginx_sweep (Experiments.nginx_sweep ?jobs:!jobs ~scale:!scale ()) );
    ("memory", fun () -> Experiments.print_memory (Experiments.memory ?jobs:!jobs ~scale:!scale ()));
    ("throughput", throughput);
    ("parallel", parallel);
    ("obs", obs);
    ("nolock", nolock);
    ("explore", explore);
    ( "ablation",
      fun () -> Experiments.print_ablation (Experiments.ablation ?jobs:!jobs ~scale:!scale ()) ) ]

let () =
  let rec parse = function
    | [] -> ()
    | "--only" :: name :: rest ->
      only := name :: !only;
      parse rest
    | "--scale" :: s :: rest ->
      scale := float_of_string s;
      parse rest
    | "--bench-out" :: path :: rest ->
      bench_out := path;
      parse rest
    | "--parallel-out" :: path :: rest ->
      parallel_out := path;
      parse rest
    | "--jobs" :: n :: rest ->
      jobs := Some (int_of_string n);
      parse rest
    | "--list" :: _ ->
      List.iter (fun (name, _) -> print_endline name) experiments;
      exit 0
    | arg :: _ ->
      Printf.eprintf "unknown argument %S\n" arg;
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    if !only = [] then experiments
    else List.filter (fun (name, _) -> List.mem name !only) experiments
  in
  if selected = [] then begin
    Printf.eprintf "no experiment matched; try --list\n";
    exit 2
  end;
  List.iter
    (fun (name, run) ->
      Printf.printf "==== %s ====\n%!" name;
      run ();
      print_newline ())
    selected
